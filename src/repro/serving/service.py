"""The single-writer / many-readers serving session.

:class:`SimRankService` wires the three layers together for the
link-evolving serving workload the paper targets: precompute once, then
serve reads while edges arrive.  It runs in one of two writer modes:

* **sync** (default) — the original single-threaded session.  Writers
  call :meth:`submit` (updates land in the coalescing
  :class:`~repro.serving.scheduler.UpdateScheduler`), the caller drives
  :meth:`drain` explicitly, and :meth:`snapshot` pins the live stores.
* **background** — a dedicated
  :class:`~repro.serving.writer.BackgroundWriter` thread owns the drain
  loop: it wakes on a configurable interval (or when the bounded queue
  hits its cap), applies one coalesced batch through the consolidated
  row path, and publishes a fresh immutable
  :class:`~repro.serving.snapshot.SnapshotView`.  Readers pin the
  published view with a single attribute read, so they **never block on
  a drain**; submitters feel the bounded queue through the configured
  backpressure policy (``block`` / ``drop-coalesce`` / ``error``).

Pinned views are bit-stable under any number of subsequent drains
(copy-on-write shards), so a query fleet can keep answering from a
consistent version while updates stream in, then re-pin at its own
cadence.  The snapshot semantics are exactly what a multi-process
deployment would ship across workers (frozen shard views + packed
``Q``).
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, Optional, Union

import numpy as np

from ..exceptions import (
    ConfigError,
    DegradedModeError,
    HistoryUnavailableError,
    PoolUnrecoverableError,
    ServiceClosedError,
)
from ..graph.digraph import DynamicDiGraph
from ..graph.updates import EdgeUpdate, UpdateBatch
from ..incremental.engine import DynamicSimRank
from .config import (  # noqa: F401  (re-exported for compatibility)
    DEGRADED_POLICIES,
    PRECISION_MODES,
    WRITER_MODES,
    DurabilityConfig,
    ServiceConfig,
    resolve_service_config,
)
from ..telemetry import Telemetry
from .envelopes import QueryRequest, QueryResult, run_query
from .scheduler import UpdateScheduler
from .snapshot import SnapshotView
from .writer import (
    DEFAULT_DRAIN_INTERVAL,
    DEFAULT_MAX_PENDING,
    BackgroundWriter,
)

#: Sentinel distinguishing "kwarg not passed" from any real value, so
#: the legacy-kwarg compatibility layer only reports *explicitly*
#: passed arguments to :func:`resolve_service_config` (an untouched
#: default can never conflict with an explicit :class:`ServiceConfig`).
_UNSET = object()


def _coerce_durability(value):
    """Accept a data-dir string, a wire dict, or a DurabilityConfig."""
    if value is None or isinstance(value, DurabilityConfig):
        return value
    if isinstance(value, str):
        return DurabilityConfig(data_dir=value)
    if isinstance(value, dict):
        return DurabilityConfig.from_dict(value)
    raise ConfigError(
        "durability must be a data-dir path, a DurabilityConfig, or a "
        f"config dict, not {type(value).__name__}"
    )


class SimRankService:
    """Versioned SimRank serving over a link-evolving graph.

    Parameters
    ----------
    graph:
        The live :class:`DynamicDiGraph` this service owns.
    config:
        The deployment shape: a :class:`ServiceConfig`, its
        ``to_dict()`` payload, a path to a saved config file, a bare
        :class:`~repro.config.SimRankConfig` (the historical second
        positional argument), or None.  The remaining keyword
        arguments are the historical per-knob surface; they still work
        and build a :class:`ServiceConfig` under the hood.  Passing an
        explicit :class:`ServiceConfig` *and* a conflicting keyword
        raises :class:`~repro.exceptions.ConfigError` — see
        :func:`resolve_service_config`.
    initial_scores, shard_rows:
        Forwarded to the underlying :class:`DynamicSimRank` engine.
    writer:
        ``"sync"`` (caller-driven drains) or ``"background"`` (start a
        :class:`BackgroundWriter` immediately).
    drain_interval, max_pending, backpressure:
        Background-writer tuning; ignored in sync mode (start one later
        with :meth:`start_background_writer`).
    executor, workers, start_method:
        ``executor="process"`` moves the score shards into a
        :mod:`repro.cluster` pool of ``workers`` processes; each drain
        ships as **one** batched plan command over the pool (with the
        payload staged in shared memory and dispatch pipelined against
        the previous drain) while reads and snapshot pins stay
        zero-copy through shared memory.  Results (scores, rankings,
        snapshots) are bit-identical to the in-process executor.
    plan_batching:
        Set False to force the per-plan wire path on the process
        executor (one round trip per row group; the benchmark's
        comparison axis).  Ignored in-process.
    executor_options:
        Extra keyword arguments for the process executor's worker pool
        (``supervise``, ``deadline_floor``, ``command_timeout``,
        ``max_respawns``, ``fault_plan``, ...).  Ignored in-process.
    degraded_policy:
        One of :data:`DEGRADED_POLICIES`; what happens when the pool
        becomes unrecoverable (default ``"reject"``).
    precision:
        One of :data:`PRECISION_MODES` (default ``"float64"``).
        ``"float32"`` stores the score shards uniformly at float32
        (planning/GEMM arithmetic stays float64, so results are
        bit-identical across executors at that storage dtype).
        ``"auto"`` consumes ``precision_plan`` — or, when none is
        given, runs a small seeded
        :class:`~repro.tuning.precision.PrecisionAutotuner` calibration
        against a float64 reference leg before serving starts.
    precision_plan:
        A :class:`~repro.tuning.precision.PrecisionPlan`, its
        ``to_dict()`` payload, or a path to a saved plan file.  Only
        read when ``precision="auto"``.  Per-shard overrides apply on
        the in-process executor; the process executor is uniform-dtype
        by design, so a partial plan conservatively serves at the
        plan's ``store_dtype`` there.
    durability:
        A data-dir path, a
        :class:`~repro.serving.config.DurabilityConfig`, or its
        ``to_dict()`` payload.  When set, the service recovers any
        state already in the data dir (the recovered graph/scores win
        over the ``graph``/``initial_scores`` arguments), appends every
        acked drain to a checksummed write-ahead log before the ack is
        released, writes periodic checkpoints, and serves time-travel
        reads (:meth:`score_at`, :meth:`top_k_at`, :meth:`view_at`)
        over the retained history.
    """

    def __init__(
        self,
        graph: DynamicDiGraph,
        config=None,
        initial_scores: Optional[np.ndarray] = None,
        shard_rows=_UNSET,
        writer=_UNSET,
        drain_interval=_UNSET,
        max_pending=_UNSET,
        backpressure=_UNSET,
        executor=_UNSET,
        workers=_UNSET,
        start_method=_UNSET,
        plan_batching=_UNSET,
        executor_options=_UNSET,
        degraded_policy=_UNSET,
        precision=_UNSET,
        precision_plan=_UNSET,
        durability=_UNSET,
    ) -> None:
        if durability is not _UNSET:
            durability = _coerce_durability(durability)
        legacy = {
            "shard_rows": shard_rows,
            "writer": writer,
            "drain_interval": drain_interval,
            "max_pending": max_pending,
            "backpressure": backpressure,
            "executor": executor,
            "workers": workers,
            "start_method": start_method,
            "plan_batching": plan_batching,
            "executor_options": executor_options,
            "degraded_policy": degraded_policy,
            "precision": precision,
            "precision_plan": precision_plan,
            "durability": durability,
        }
        overrides = {
            name: value
            for name, value in legacy.items()
            if value is not _UNSET
        }
        if overrides.get("precision", "") is None:
            # Historical callers passed precision=None for "the default".
            del overrides["precision"]
        cfg = resolve_service_config(config, overrides)
        self._config = cfg
        #: The service's telemetry spine, shared by every layer below
        #: (engine, executor, pool) and above (front door): one metric
        #: registry, one trace ring, one flight recorder.
        self.telemetry = Telemetry.from_config(cfg.telemetry)
        self._query_hist = self.telemetry.registry.histogram(
            "repro_service_query_seconds",
            help="In-process query latency (snapshot pin + execute)",
        )
        self._drain_hist = self.telemetry.registry.histogram(
            "repro_drain_apply_seconds",
            help="Consolidated drain apply wall time (sync + background)",
        )
        #: Trace ids of traced update submissions awaiting the drain
        #: that folds them in (bounded; drained by the next apply).
        self._origin_traces: list = []
        simrank_config = cfg.simrank_config()
        self._precision = cfg.precision
        self._precision_plan = None
        self._closed = False
        self._close_lock = threading.RLock()
        self._drain_listeners: list = []
        self._durability = None
        if cfg.durability is not None:
            from ..durability.manager import DurabilityManager

            self._durability = DurabilityManager(
                cfg.durability, telemetry=self.telemetry
            )
        try:
            recovered = None
            if self._durability is not None:
                # A data dir holding a valid manifest wins over the
                # caller's graph/scores: the durable history *is* the
                # service state, restored bit-identical to the last
                # acked drain.  The arguments seed only a fresh dir.
                recovered = self._durability.recover()
                if recovered is not None:
                    graph = recovered.graph
                    initial_scores = recovered.scores
            score_dtype = (
                self._precision if self._precision != "auto" else None
            )
            if self._precision == "auto":
                plan, initial_scores = self._resolve_precision_plan(
                    cfg.precision_plan,
                    graph,
                    simrank_config,
                    initial_scores,
                    cfg.shard_rows,
                )
                self._precision_plan = plan
                score_dtype = plan.store_dtype
            engine_kwargs = {}
            if cfg.shard_rows is not None:
                engine_kwargs["shard_rows"] = cfg.shard_rows
            self._engine = DynamicSimRank(
                graph,
                simrank_config,
                algorithm="inc-sr",
                initial_scores=initial_scores,
                executor=cfg.executor,
                workers=cfg.workers,
                start_method=cfg.start_method,
                plan_batching=cfg.plan_batching,
                executor_options=cfg.executor_options,
                score_dtype=score_dtype,
                telemetry=self.telemetry,
                **engine_kwargs,
            )
            if (
                self._precision_plan is not None
                and not self._precision_plan.uniform
                and cfg.executor != "process"
            ):
                # Per-shard overrides exist only in-process; the pool is
                # uniform-dtype (see PrecisionPlan docs).
                self._precision_plan.apply_to(self._engine.score_store)
            if self._durability is not None:
                if recovered is not None:
                    self._engine.restore_version(recovered.version)
                self._durability.attach(self._engine)
        except BaseException:
            # Never leak the data-dir lock on a failed construction.
            if self._durability is not None:
                self._durability.close()
            raise
        self._scheduler = UpdateScheduler()
        self._writer: Optional[BackgroundWriter] = None
        self._degraded_policy = cfg.degraded_policy
        self._degraded = False
        self._degraded_reason: Optional[str] = None
        self._degraded_view: Optional[SnapshotView] = None
        self._failovers = 0
        self._last_failover_resumed = 0
        if cfg.writer == "background":
            self.start_background_writer(
                drain_interval=cfg.drain_interval,
                max_pending=cfg.max_pending,
                policy=cfg.backpressure,
            )

    @staticmethod
    def _resolve_precision_plan(
        precision_plan, graph, config, initial_scores, shard_rows
    ):
        """Coerce ``precision_plan`` to a plan, autotuning when absent.

        Returns ``(plan, initial_scores)`` — the autotuner computes the
        initial batch scores when the caller did not supply them, and
        handing them back avoids recomputing the same matrix for the
        engine.
        """
        from ..tuning.precision import (
            PrecisionAutotuner,
            PrecisionPlan,
        )

        if precision_plan is not None:
            if isinstance(precision_plan, PrecisionPlan):
                return precision_plan, initial_scores
            if isinstance(precision_plan, dict):
                return PrecisionPlan.from_dict(precision_plan), initial_scores
            if isinstance(precision_plan, str):
                return PrecisionPlan.load(precision_plan), initial_scores
            raise ConfigError(
                "precision_plan must be a PrecisionPlan, a dict, or a "
                f"path, got {type(precision_plan).__name__}"
            )
        tuner_kwargs = {}
        if shard_rows is not None:
            tuner_kwargs["shard_rows"] = shard_rows
        tuner = PrecisionAutotuner(
            graph,
            config=config,
            initial_scores=initial_scores,
            **tuner_kwargs,
        )
        return tuner.run(), tuner.initial_scores

    # -------------------------------------------------------------- #
    # Writer lifecycle
    # -------------------------------------------------------------- #

    def start_background_writer(
        self,
        drain_interval: float = DEFAULT_DRAIN_INTERVAL,
        max_pending: int = DEFAULT_MAX_PENDING,
        policy: str = "block",
    ) -> BackgroundWriter:
        """Hand the drain loop to a dedicated writer thread."""
        self._ensure_open()
        if self._writer is not None:
            raise ConfigError("background writer already running")
        heartbeat = (
            self._engine.executor_heartbeat
            if self._engine.executor == "process"
            else None
        )
        self._writer = BackgroundWriter(
            self._engine,
            self._scheduler,
            drain_interval=drain_interval,
            max_pending=max_pending,
            policy=policy,
            on_fatal=self._on_pool_failure,
            heartbeat=heartbeat,
            on_publish=self._on_writer_publish,
            on_drained=self._durable_on_drain,
            telemetry=self.telemetry,
            trace_source=self._take_origin_traces,
        )
        self._writer.start()
        return self._writer

    def stop_background_writer(self, drain: bool = True) -> None:
        """Stop the writer thread (draining leftovers by default)."""
        if self._writer is None:
            return
        self._writer.stop(drain=drain)
        self._writer = None

    def close(self, drain: bool = True) -> None:
        """Stop the writer and release the executor — idempotent.

        Safe to call from several threads at once and any number of
        times: the whole teardown runs under one lock, the first caller
        does the work, every later (or concurrent) caller waits for it
        and returns.  After close every read/write entry point raises
        :class:`~repro.exceptions.ServiceClosedError` instead of
        touching the released executor — that is what lets a network
        front door shut down while requests are still in flight.

        On the process executor this also shuts the worker pool down
        and unlinks its shared-memory segments, so always close (or use
        the context manager) when done serving.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            self._drain_listeners.clear()
            try:
                self.stop_background_writer(drain=drain)
            finally:
                try:
                    self._engine.close()
                finally:
                    if self._durability is not None:
                        self._durability.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (requests now raise 503-class)."""
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceClosedError(
                "SimRankService is closed and no longer accepts requests"
            )

    def __enter__(self) -> "SimRankService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    # -------------------------------------------------------------- #
    # Drain listeners
    # -------------------------------------------------------------- #

    def add_drain_listener(self, listener) -> None:
        """Register ``listener(version)`` to fire after every publish.

        Fires on every version bump: background-writer publishes, sync
        drains, and live ``add_node`` growth.  Listeners run on the
        draining thread (under the apply lock in background mode), so
        they must be fast and must not call back into the service;
        exceptions are swallowed.  The network front door uses this to
        learn about drains without polling — its listener just flips an
        asyncio event across the thread boundary.
        """
        self._ensure_open()
        self._drain_listeners.append(listener)

    def remove_drain_listener(self, listener) -> None:
        """Unregister a listener (no-op when absent)."""
        try:
            self._drain_listeners.remove(listener)
        except ValueError:
            pass

    def _on_writer_publish(self, view: SnapshotView) -> None:
        self._notify_drained(view.version)

    def _notify_drained(self, version: int) -> None:
        for listener in tuple(self._drain_listeners):
            try:
                listener(version)
            except Exception:
                pass  # a broken listener must never stall a drain

    # -------------------------------------------------------------- #
    # Introspection
    # -------------------------------------------------------------- #

    @property
    def engine(self) -> DynamicSimRank:
        """The underlying engine (kernel/executor facade)."""
        return self._engine

    @property
    def service_config(self) -> ServiceConfig:
        """The resolved deployment shape (whatever surface built it)."""
        return self._config

    @property
    def scheduler(self) -> UpdateScheduler:
        """The write-side queue."""
        return self._scheduler

    @property
    def writer(self) -> Optional[BackgroundWriter]:
        """The background writer, or None in sync mode."""
        return self._writer

    @property
    def background(self) -> bool:
        """Whether a background writer currently owns the drain loop."""
        return self._writer is not None

    @property
    def executor(self) -> str:
        """Which executor owns the score shards (``inproc``/``process``)."""
        return self._engine.executor

    @property
    def precision(self) -> str:
        """The configured precision mode (:data:`PRECISION_MODES`)."""
        return self._precision

    @property
    def precision_plan(self):
        """The consumed/derived precision plan (``auto`` mode), or None.

        Serializable: ``plan.save(path)`` then
        ``SimRankService(..., precision="auto", precision_plan=path)``
        restores the exact same dtype layout after a restart.
        """
        return self._precision_plan

    @property
    def version(self) -> int:
        """Current state version (bumped once per drained batch)."""
        return self._engine.version

    @property
    def num_nodes(self) -> int:
        return self._engine.graph.num_nodes

    @property
    def pending(self) -> int:
        """Net queued updates not yet applied."""
        return len(self._scheduler)

    # -------------------------------------------------------------- #
    # Graceful degradation
    # -------------------------------------------------------------- #

    @property
    def degraded(self) -> bool:
        """Whether the service is serving read-only from a frozen view."""
        return self._degraded

    @property
    def degraded_reason(self) -> Optional[str]:
        """What killed the pool, when :attr:`degraded` is True."""
        return self._degraded_reason

    @property
    def degraded_policy(self) -> str:
        """The configured pool-failure policy."""
        return self._degraded_policy

    @property
    def failovers(self) -> int:
        """Completed in-process failovers (``rebuild`` policy)."""
        return self._failovers

    def _build_degraded_view(self) -> Optional[SnapshotView]:
        """A consistent read-only view rebuilt from the dead pool.

        Base + journal + stashed plans — never the parent's live
        mirror, which a mid-drain failure leaves torn across workers.
        Returns None if even the rebuild fails (reads then raise).
        """
        try:
            store = self._engine.rebuilt_scores()
            return SnapshotView(
                scores=store.snapshot(),
                transitions=self._engine.transition_store.snapshot(),
                config=self._engine.config,
                version=self._engine.version,
            )
        except Exception:
            return None

    def _on_pool_failure(
        self, exc: BaseException, defer_resync: bool = False
    ) -> bool:
        """Handle an unrecoverable pool: fail over or degrade read-only.

        Runs under the writer's apply lock (background mode) or on the
        draining thread (sync mode).  Returns True when the ``rebuild``
        policy swapped in an in-process store and serving may continue
        at full capability.
        """
        self._degraded = True
        self._degraded_reason = f"{type(exc).__name__}: {exc}"
        flight = self.telemetry.flight
        flight.record(
            "pool_failure",
            error=type(exc).__name__,
            reason=str(exc),
            policy=self._degraded_policy,
        )
        if self._degraded_policy == "rebuild":
            try:
                resumed = self._engine.failover_in_process()
            except Exception:
                pass  # fall through to read-only degradation
            else:
                self._degraded = False
                self._degraded_reason = None
                self._failovers += 1
                self._last_failover_resumed = resumed
                flight.record("failover", resumed=resumed)
                if not defer_resync:
                    self._durable_resync()
                return True
        # Degraded-mode entry is one of the flight recorder's three
        # dump triggers: snapshot the last N events for the post-mortem.
        flight.dump("degraded")
        view = self._writer.current_view if self._writer is not None else None
        if view is None:
            view = self._build_degraded_view()
        self._degraded_view = view
        return False

    def _refuse_mutation(self, what: str) -> None:
        raise DegradedModeError(
            f"service is degraded ({self._degraded_reason}); {what} is "
            f"unavailable under the {self._degraded_policy!r} policy"
        )

    def _degraded_read_view(self) -> SnapshotView:
        view = self._degraded_view
        if view is None:
            raise DegradedModeError(
                f"service is degraded ({self._degraded_reason}) and no "
                "consistent view could be rebuilt from the failed pool"
            )
        return view

    def _handle_pool_failure(self, exc: BaseException) -> bool:
        """Thread-safe wrapper around :meth:`_on_pool_failure`.

        Pipelined dispatch means a pool death can surface at *any* later
        sync point — a read as easily as a drain — possibly on a reader
        thread racing the writer's own heartbeat detection.  Serialize
        on the apply lock and re-check who won.
        """
        if self._writer is not None:
            with self._writer.apply_lock:
                if self._degraded:
                    return False
                if self._engine.executor != "process":
                    return True  # another thread already failed over
                return self._on_pool_failure(exc)
        return self._on_pool_failure(exc)

    # -------------------------------------------------------------- #
    # Write path
    # -------------------------------------------------------------- #

    def note_origin_trace(self, trace_id: Optional[str]) -> None:
        """Remember a traced update submission until the next drain.

        The drain that folds the submission in records a
        ``drain.apply`` span under each remembered id (with the fan-in
        count as an attribute) and propagates the most recent one down
        the executor as the active trace — so worker-side apply spans
        land in the submitter's trace.  Bounded: beyond 64 pending ids
        new ones are dropped (the span ring is best-effort anyway).
        """
        if not trace_id or not self.telemetry.tracer.sampled(trace_id):
            return
        if len(self._origin_traces) < 64:
            self._origin_traces.append(trace_id)

    def _take_origin_traces(self) -> list:
        """Pop every pending origin trace id (called by the drain)."""
        if not self._origin_traces:
            return []
        taken, self._origin_traces = self._origin_traces, []
        return taken

    def submit(self, update: Union[EdgeUpdate, UpdateBatch]) -> None:
        """Queue an update (or a whole batch) for the next drain.

        In background mode the bounded queue's backpressure policy
        applies: the call may block, silently drop non-coalescing
        updates, or raise :class:`~repro.exceptions.BackpressureError`.
        """
        updates = [update] if isinstance(update, EdgeUpdate) else update
        self.submit_many(updates)

    def submit_many(self, updates: Iterable[EdgeUpdate]) -> None:
        """Queue a stream of updates for the next drain."""
        self._ensure_open()
        if self._degraded and self._degraded_policy != "queue":
            self._refuse_mutation("submit")
        if self._writer is not None:
            self._writer.submit_many(updates)
        else:
            self._scheduler.submit_many(updates)

    def drain(self) -> int:
        """Apply everything queued as one coalesced consolidated batch.

        Sync mode only — in background mode the writer thread owns the
        drain loop; use :meth:`flush` to wait for it.  Returns the
        number of row groups processed (0 when the queue was empty).

        If the batch is invalid against the live graph (e.g. a queued
        insert of an edge that already exists), the engine raises
        before touching any state; the drained updates are re-queued
        first, so nothing pending is lost and the caller can repair the
        queue and drain again.
        """
        self._ensure_open()
        if self._writer is not None:
            raise ConfigError(
                "the background writer owns the drain loop; use flush() "
                "to wait for it (or stop_background_writer() first)"
            )
        if self._degraded:
            self._refuse_mutation("drain")
        batch = self._scheduler.drain()
        if not len(batch):
            return 0
        traces = self._take_origin_traces()
        tracer = self.telemetry.tracer
        # The active-trace baton rides the whole apply call chain down
        # to the cluster pipe (see Tracer.set_active); sync drains run
        # on the calling thread, so set/clear brackets the apply.
        tracer.set_active(traces[-1] if traces else None)
        started = time.perf_counter()
        try:
            groups = self._engine.apply_consolidated(batch)
            elapsed = time.perf_counter() - started
            self._drain_hist.observe(elapsed)
            for trace_id in traces:
                tracer.record(
                    "drain.apply",
                    trace_id,
                    elapsed,
                    fan_in=len(traces),
                    updates=len(batch),
                    groups=groups,
                )
            self._durable_on_drain()
            self._notify_drained(self._engine.version)
            return groups
        except PoolUnrecoverableError as exc:
            # Unlike the transient branch below, do NOT re-queue: the
            # engine's graph/Q already advanced for every journaled
            # group and its stashes carry the rest, so re-submitting
            # the batch would apply those updates twice after a
            # rebuild.  Under the ``rebuild`` policy the failover
            # finishes the interrupted drain in-process and the call
            # succeeds (returning the resumed group count).
            if self._on_pool_failure(exc):
                self._notify_drained(self._engine.version)
                return self._last_failover_resumed
            raise
        except Exception:
            self._scheduler.submit_many(batch)
            raise
        finally:
            tracer.set_active(None)

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Ensure everything queued so far is applied.

        Background mode blocks until the writer has drained and
        published (False on timeout); sync mode simply drains inline.
        """
        self._ensure_open()
        if self._writer is not None:
            return self._writer.flush(timeout=timeout)
        self.drain()
        return True

    def add_node(self) -> int:
        """Grow the node universe by one isolated node (applied live)."""
        self._ensure_open()
        if self._degraded:
            self._refuse_mutation("add_node")
        try:
            if self._writer is not None:
                with self._writer.apply_lock:
                    node = self._engine.add_node()
                    self._durable_add_node(node)
                    self._writer.publish()
                return node
            node = self._engine.add_node()
            self._durable_add_node(node)
            self._notify_drained(self._engine.version)
            return node
        except PoolUnrecoverableError as exc:
            return self._add_node_failover(exc)

    def _add_node_failover(self, exc: BaseException) -> int:
        """Finish an add_node the dying pool interrupted, if possible.

        Under ``rebuild`` the journal replay restores whatever the pool
        acknowledged; the steps the engine never reached (growing the
        store, the ``1 − C`` self-score, the version bump) are then
        re-done idempotently against the rebuilt in-process store.
        """
        lock = self._writer.apply_lock if self._writer is not None else None
        try:
            if lock is not None:
                lock.acquire()
            if not self._on_pool_failure(exc, defer_resync=True):
                raise exc
            node = self._engine.graph.num_nodes - 1
            store = self._engine.score_store
            while store.num_nodes < self._engine.graph.num_nodes:
                store.add_node()
            store.set_entry(node, node, 1.0 - self._engine.config.damping)
            self._durable_resync()
            if self._writer is not None:
                self._writer.publish()
            return node
        finally:
            if lock is not None:
                lock.release()

    # -------------------------------------------------------------- #
    # Durability hooks
    # -------------------------------------------------------------- #

    def _durable_on_drain(self) -> None:
        """Append the just-applied drain to the WAL, then maybe checkpoint.

        Runs on the draining thread — under the writer's apply lock in
        background mode, inline in sync mode — *between* the engine
        apply and the publish/ack.  Ack-after-append is the durability
        contract: a version a client observed is a version a restart
        recovers bit-identically.
        """
        if self._durability is None:
            return
        drained = self._engine.take_last_drain()
        if drained is None:
            return
        row_updates, plans = drained
        self._durability.append_drain(
            self._engine.version, row_updates, plans
        )
        self._durability.maybe_checkpoint(self._engine)

    def _durable_add_node(self, node: int) -> None:
        """WAL one live node arrival (same ack-after-append seam)."""
        if self._durability is None:
            return
        self._durability.append_add_node(
            self._engine.version, node, self._engine.graph.num_nodes
        )
        self._durability.maybe_checkpoint(self._engine)

    def _durable_resync(self) -> None:
        """Re-anchor the log after an in-process failover.

        Journal replay re-derived the live state outside the WAL seam,
        so the stale last-drain record (if any) is dropped and a full
        checkpoint recaptures and rotates — see
        :meth:`~repro.durability.manager.DurabilityManager.resync`.
        """
        if self._durability is None:
            return
        self._engine.take_last_drain()  # stale: replay bypassed the seam
        self._durability.resync(self._engine)

    @property
    def durability(self):
        """The :class:`DurabilityManager`, or None when not configured."""
        return self._durability

    # -------------------------------------------------------------- #
    # Read path
    # -------------------------------------------------------------- #

    def snapshot(self) -> SnapshotView:
        """Pin the current version as an immutable :class:`SnapshotView`.

        Background mode returns the writer's latest *published* view —
        one attribute read, so readers never block on an in-flight
        drain.  Sync mode pins the live stores directly.  A degraded
        service keeps answering from the last consistent view (never
        from the torn live mirror a mid-drain pool failure leaves
        behind).
        """
        self._ensure_open()
        if self._degraded:
            return self._degraded_read_view()
        if self._writer is not None:
            return self._writer.current_view
        try:
            return self._pin_live()
        except PoolUnrecoverableError as exc:
            # Pipelined batches surface a mid-drain pool death at the
            # next sync point — often a read like this one.
            if self._handle_pool_failure(exc):
                return self._pin_live()
            return self._degraded_read_view()

    def _pin_live(self) -> SnapshotView:
        return SnapshotView(
            scores=self._engine.score_store.snapshot(),
            transitions=self._engine.transition_store.snapshot(),
            config=self._engine.config,
            version=self._engine.version,
        )

    def similarity(self, node_a: int, node_b: int) -> float:
        """Latest-version score of one pair.

        Background mode reads the latest published view (consistent,
        at most one drain behind); sync mode reads the live store.
        """
        self._ensure_open()
        if self._degraded:
            return self._degraded_read_view().similarity(node_a, node_b)
        if self._writer is not None:
            return self._writer.current_view.similarity(node_a, node_b)
        try:
            return self._engine.similarity(node_a, node_b)
        except PoolUnrecoverableError as exc:
            if self._handle_pool_failure(exc):
                return self._engine.similarity(node_a, node_b)
            return self._degraded_read_view().similarity(node_a, node_b)

    def top_k(self, k: int, include_self: bool = False):
        """Top-``k`` pairs at the latest version via the shard-heap path.

        Served by the engine's incremental
        :class:`~repro.executor.topk_index.ShardTopK` (no dense ``S``
        scan); in background mode the query takes the writer's apply
        lock so it never interleaves with a drain.
        """
        self._ensure_open()
        if self._degraded:
            return self._degraded_read_view().top_k(
                k, include_self=include_self
            )
        try:
            if self._writer is not None:
                with self._writer.apply_lock:
                    return self._engine.top_k(k, include_self=include_self)
            return self._engine.top_k(k, include_self=include_self)
        except PoolUnrecoverableError as exc:
            if self._handle_pool_failure(exc):
                return self.top_k(k, include_self=include_self)
            return self._degraded_read_view().top_k(
                k, include_self=include_self
            )

    def view_at(self, version: int) -> SnapshotView:
        """Pin a historical version as an immutable snapshot.

        ``version`` must be the live version (served directly) or one
        reachable from a retained checkpoint plus WAL replay; anything
        older than the retention horizon (or newer than the live state)
        raises :class:`~repro.exceptions.HistoryUnavailableError`.
        Requires durability to be configured.
        """
        self._ensure_open()
        version = int(version)
        live = self._engine.version
        if version == live:
            return self.snapshot()
        if version > live:
            raise HistoryUnavailableError(
                f"version {version} is in the future (live version is "
                f"{live})"
            )
        if self._durability is None:
            raise HistoryUnavailableError(
                "time-travel reads need durability= configured"
            )
        return self._durability.view_at(version, self._engine.config)

    def score_at(self, node_a: int, node_b: int, version: int) -> float:
        """One pair's score as of ``version`` (time-travel read)."""
        return self.view_at(version).similarity(node_a, node_b)

    def top_k_at(self, k: int, version: int, include_self: bool = False):
        """Top-``k`` pairs as of ``version`` (time-travel read)."""
        return self.view_at(version).top_k(k, include_self=include_self)

    def query(self, request: Union[QueryRequest, dict]) -> QueryResult:
        """Run one typed :class:`QueryRequest` and wrap the answer.

        The in-process twin of the front door's ``POST /query``: the
        same envelope in, the same envelope out, the same arithmetic
        (``similarity``/``single_pair``/``single_source`` read a pinned
        snapshot; ``top_k`` rides the shard-heap path under the apply
        lock).  Accepts a raw wire dict as a convenience.
        """
        if isinstance(request, dict):
            request = QueryRequest.from_dict(request)
        self._ensure_open()
        started = time.perf_counter()
        if request.kind == "top_k":
            value = self.top_k(request.k)
            result = QueryResult(
                kind=request.kind,
                value=value,
                version=self.version,
                elapsed_seconds=time.perf_counter() - started,
                id=request.id,
            )
        else:
            result = run_query(self.snapshot(), request)
        self._query_hist.observe(time.perf_counter() - started)
        return result

    def memory_report(self) -> dict:
        """Layered memory accounting including scheduler state."""
        self._ensure_open()
        if self._writer is not None:
            with self._writer.apply_lock:
                report = self._engine.memory_report()
        else:
            report = self._engine.memory_report()
        report["scheduler_pending"] = len(self._scheduler)
        return report

    def metrics_report(self) -> dict:
        """Serving-side observability: queue, writer, and top-k gauges."""
        self._ensure_open()
        stats = self._scheduler.stats
        report = {
            "version": self.version,
            "queue_depth": len(self._scheduler),
            "pending_targets": self._scheduler.pending_targets,
            "scheduler": {
                "submitted": stats.submitted,
                "cancelled_pairs": stats.cancelled_pairs,
                "drained_updates": stats.drained_updates,
                "drained_batches": stats.drained_batches,
                "drained_groups": stats.drained_groups,
                "max_drained_groups": stats.max_drained_groups,
                "coalescing_ratio": stats.coalescing_ratio(),
            },
        }
        # Executor-side apply gauges: per-shard scatter wall time
        # in-process, per-worker apply time + IPC overhead on the pool
        # — this is what lets the cluster bench attribute drain latency
        # to workers vs IPC.  The report iterates dicts the drain
        # mutates, so in background mode it must not interleave with an
        # in-flight apply.
        if self._writer is not None:
            with self._writer.apply_lock:
                report["executor"] = self._engine.score_store.apply_report()
                report["executor"].update(
                    self._engine.score_store.dtype_report()
                )
        else:
            report["executor"] = self._engine.score_store.apply_report()
            report["executor"].update(self._engine.score_store.dtype_report())
        report["precision"] = {
            "mode": self._precision,
            "plan": (
                self._precision_plan.to_dict()
                if self._precision_plan is not None
                else None
            ),
        }
        if self._writer is not None:
            report["writer"] = self._writer.report()
        report["degraded"] = {
            "degraded": self._degraded,
            "policy": self._degraded_policy,
            "reason": self._degraded_reason,
            "failovers": self._failovers,
        }
        index = self._engine.topk_index
        if index is not None:
            report["topk"] = {
                "k": index.k,
                "capacity": index.capacity,
                "heap_hit_rate": index.stats.heap_hit_rate(),
                "clean_query_rate": index.stats.clean_query_rate(),
                "queries": index.stats.queries,
                "shard_rescans": index.stats.shard_rescans,
                "patched_entries": index.stats.patched_entries,
                "floor_invalidations": index.stats.floor_invalidations,
                "dirty_shards": index.dirty_shards(),
            }
        report["durability"] = (
            self._durability.report()
            if self._durability is not None
            else {"enabled": False}
        )
        # New section only — every pre-telemetry key above is unchanged
        # (asserted by tests/test_telemetry.py).
        report["telemetry"] = self.telemetry.report()
        return report

    def __repr__(self) -> str:
        mode = "background" if self.background else "sync"
        return (
            f"SimRankService(n={self.num_nodes}, version={self.version}, "
            f"pending={self.pending}, writer={mode})"
        )
