"""The single-writer / many-readers serving session.

:class:`SimRankService` wires the three layers together for the
link-evolving serving workload the paper targets: precompute once, then
serve reads while edges arrive.  It runs in one of two writer modes:

* **sync** (default) — the original single-threaded session.  Writers
  call :meth:`submit` (updates land in the coalescing
  :class:`~repro.serving.scheduler.UpdateScheduler`), the caller drives
  :meth:`drain` explicitly, and :meth:`snapshot` pins the live stores.
* **background** — a dedicated
  :class:`~repro.serving.writer.BackgroundWriter` thread owns the drain
  loop: it wakes on a configurable interval (or when the bounded queue
  hits its cap), applies one coalesced batch through the consolidated
  row path, and publishes a fresh immutable
  :class:`~repro.serving.snapshot.SnapshotView`.  Readers pin the
  published view with a single attribute read, so they **never block on
  a drain**; submitters feel the bounded queue through the configured
  backpressure policy (``block`` / ``drop-coalesce`` / ``error``).

Pinned views are bit-stable under any number of subsequent drains
(copy-on-write shards), so a query fleet can keep answering from a
consistent version while updates stream in, then re-pin at its own
cadence.  The snapshot semantics are exactly what a multi-process
deployment would ship across workers (frozen shard views + packed
``Q``).
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

from ..config import SimRankConfig
from ..exceptions import ConfigError
from ..graph.digraph import DynamicDiGraph
from ..graph.updates import EdgeUpdate, UpdateBatch
from ..incremental.engine import DynamicSimRank
from .scheduler import UpdateScheduler
from .snapshot import SnapshotView
from .writer import (
    DEFAULT_DRAIN_INTERVAL,
    DEFAULT_MAX_PENDING,
    BackgroundWriter,
)

WRITER_MODES = ("sync", "background")


class SimRankService:
    """Versioned SimRank serving over a link-evolving graph.

    Parameters
    ----------
    graph, config, initial_scores, shard_rows:
        Forwarded to the underlying :class:`DynamicSimRank` engine.
    writer:
        ``"sync"`` (caller-driven drains) or ``"background"`` (start a
        :class:`BackgroundWriter` immediately).
    drain_interval, max_pending, backpressure:
        Background-writer tuning; ignored in sync mode (start one later
        with :meth:`start_background_writer`).
    executor, workers, start_method:
        ``executor="process"`` moves the score shards into a
        :mod:`repro.cluster` pool of ``workers`` processes; each drain
        ships as **one** batched plan command over the pool (with the
        payload staged in shared memory and dispatch pipelined against
        the previous drain) while reads and snapshot pins stay
        zero-copy through shared memory.  Results (scores, rankings,
        snapshots) are bit-identical to the in-process executor.
    plan_batching:
        Set False to force the per-plan wire path on the process
        executor (one round trip per row group; the benchmark's
        comparison axis).  Ignored in-process.
    """

    def __init__(
        self,
        graph: DynamicDiGraph,
        config: SimRankConfig = None,
        initial_scores: Optional[np.ndarray] = None,
        shard_rows: Optional[int] = None,
        writer: str = "sync",
        drain_interval: float = DEFAULT_DRAIN_INTERVAL,
        max_pending: int = DEFAULT_MAX_PENDING,
        backpressure: str = "block",
        executor: str = "inproc",
        workers: int = 2,
        start_method: Optional[str] = None,
        plan_batching: bool = True,
    ) -> None:
        if writer not in WRITER_MODES:
            raise ConfigError(
                f"unknown writer mode {writer!r}; expected one of "
                f"{WRITER_MODES}"
            )
        engine_kwargs = {}
        if shard_rows is not None:
            engine_kwargs["shard_rows"] = shard_rows
        self._engine = DynamicSimRank(
            graph,
            config,
            algorithm="inc-sr",
            initial_scores=initial_scores,
            executor=executor,
            workers=workers,
            start_method=start_method,
            plan_batching=plan_batching,
            **engine_kwargs,
        )
        self._scheduler = UpdateScheduler()
        self._writer: Optional[BackgroundWriter] = None
        if writer == "background":
            self.start_background_writer(
                drain_interval=drain_interval,
                max_pending=max_pending,
                policy=backpressure,
            )

    # -------------------------------------------------------------- #
    # Writer lifecycle
    # -------------------------------------------------------------- #

    def start_background_writer(
        self,
        drain_interval: float = DEFAULT_DRAIN_INTERVAL,
        max_pending: int = DEFAULT_MAX_PENDING,
        policy: str = "block",
    ) -> BackgroundWriter:
        """Hand the drain loop to a dedicated writer thread."""
        if self._writer is not None:
            raise ConfigError("background writer already running")
        self._writer = BackgroundWriter(
            self._engine,
            self._scheduler,
            drain_interval=drain_interval,
            max_pending=max_pending,
            policy=policy,
        )
        self._writer.start()
        return self._writer

    def stop_background_writer(self, drain: bool = True) -> None:
        """Stop the writer thread (draining leftovers by default)."""
        if self._writer is None:
            return
        self._writer.stop(drain=drain)
        self._writer = None

    def close(self) -> None:
        """Stop the writer (draining leftovers) and release the executor.

        On the process executor this also shuts the worker pool down
        and unlinks its shared-memory segments, so always close (or use
        the context manager) when done serving.
        """
        self.stop_background_writer(drain=True)
        self._engine.close()

    def __enter__(self) -> "SimRankService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop_background_writer(drain=exc_type is None)
        self._engine.close()

    # -------------------------------------------------------------- #
    # Introspection
    # -------------------------------------------------------------- #

    @property
    def engine(self) -> DynamicSimRank:
        """The underlying engine (kernel/executor facade)."""
        return self._engine

    @property
    def scheduler(self) -> UpdateScheduler:
        """The write-side queue."""
        return self._scheduler

    @property
    def writer(self) -> Optional[BackgroundWriter]:
        """The background writer, or None in sync mode."""
        return self._writer

    @property
    def background(self) -> bool:
        """Whether a background writer currently owns the drain loop."""
        return self._writer is not None

    @property
    def executor(self) -> str:
        """Which executor owns the score shards (``inproc``/``process``)."""
        return self._engine.executor

    @property
    def version(self) -> int:
        """Current state version (bumped once per drained batch)."""
        return self._engine.version

    @property
    def num_nodes(self) -> int:
        return self._engine.graph.num_nodes

    @property
    def pending(self) -> int:
        """Net queued updates not yet applied."""
        return len(self._scheduler)

    # -------------------------------------------------------------- #
    # Write path
    # -------------------------------------------------------------- #

    def submit(self, update: Union[EdgeUpdate, UpdateBatch]) -> None:
        """Queue an update (or a whole batch) for the next drain.

        In background mode the bounded queue's backpressure policy
        applies: the call may block, silently drop non-coalescing
        updates, or raise :class:`~repro.exceptions.BackpressureError`.
        """
        updates = [update] if isinstance(update, EdgeUpdate) else update
        self.submit_many(updates)

    def submit_many(self, updates: Iterable[EdgeUpdate]) -> None:
        """Queue a stream of updates for the next drain."""
        if self._writer is not None:
            self._writer.submit_many(updates)
        else:
            self._scheduler.submit_many(updates)

    def drain(self) -> int:
        """Apply everything queued as one coalesced consolidated batch.

        Sync mode only — in background mode the writer thread owns the
        drain loop; use :meth:`flush` to wait for it.  Returns the
        number of row groups processed (0 when the queue was empty).

        If the batch is invalid against the live graph (e.g. a queued
        insert of an edge that already exists), the engine raises
        before touching any state; the drained updates are re-queued
        first, so nothing pending is lost and the caller can repair the
        queue and drain again.
        """
        if self._writer is not None:
            raise ConfigError(
                "the background writer owns the drain loop; use flush() "
                "to wait for it (or stop_background_writer() first)"
            )
        batch = self._scheduler.drain()
        if not len(batch):
            return 0
        try:
            return self._engine.apply_consolidated(batch)
        except Exception:
            self._scheduler.submit_many(batch)
            raise

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Ensure everything queued so far is applied.

        Background mode blocks until the writer has drained and
        published (False on timeout); sync mode simply drains inline.
        """
        if self._writer is not None:
            return self._writer.flush(timeout=timeout)
        self.drain()
        return True

    def add_node(self) -> int:
        """Grow the node universe by one isolated node (applied live)."""
        if self._writer is not None:
            with self._writer.apply_lock:
                node = self._engine.add_node()
                self._writer.publish()
            return node
        return self._engine.add_node()

    # -------------------------------------------------------------- #
    # Read path
    # -------------------------------------------------------------- #

    def snapshot(self) -> SnapshotView:
        """Pin the current version as an immutable :class:`SnapshotView`.

        Background mode returns the writer's latest *published* view —
        one attribute read, so readers never block on an in-flight
        drain.  Sync mode pins the live stores directly.
        """
        if self._writer is not None:
            return self._writer.current_view
        return SnapshotView(
            scores=self._engine.score_store.snapshot(),
            transitions=self._engine.transition_store.snapshot(),
            config=self._engine.config,
            version=self._engine.version,
        )

    def similarity(self, node_a: int, node_b: int) -> float:
        """Latest-version score of one pair.

        Background mode reads the latest published view (consistent,
        at most one drain behind); sync mode reads the live store.
        """
        if self._writer is not None:
            return self._writer.current_view.similarity(node_a, node_b)
        return self._engine.similarity(node_a, node_b)

    def top_k(self, k: int, include_self: bool = False):
        """Top-``k`` pairs at the latest version via the shard-heap path.

        Served by the engine's incremental
        :class:`~repro.executor.topk_index.ShardTopK` (no dense ``S``
        scan); in background mode the query takes the writer's apply
        lock so it never interleaves with a drain.
        """
        if self._writer is not None:
            with self._writer.apply_lock:
                return self._engine.top_k(k, include_self=include_self)
        return self._engine.top_k(k, include_self=include_self)

    def memory_report(self) -> dict:
        """Layered memory accounting including scheduler state."""
        if self._writer is not None:
            with self._writer.apply_lock:
                report = self._engine.memory_report()
        else:
            report = self._engine.memory_report()
        report["scheduler_pending"] = len(self._scheduler)
        return report

    def metrics_report(self) -> dict:
        """Serving-side observability: queue, writer, and top-k gauges."""
        stats = self._scheduler.stats
        report = {
            "version": self.version,
            "queue_depth": len(self._scheduler),
            "pending_targets": self._scheduler.pending_targets,
            "scheduler": {
                "submitted": stats.submitted,
                "cancelled_pairs": stats.cancelled_pairs,
                "drained_updates": stats.drained_updates,
                "drained_batches": stats.drained_batches,
                "drained_groups": stats.drained_groups,
                "max_drained_groups": stats.max_drained_groups,
                "coalescing_ratio": stats.coalescing_ratio(),
            },
        }
        # Executor-side apply gauges: per-shard scatter wall time
        # in-process, per-worker apply time + IPC overhead on the pool
        # — this is what lets the cluster bench attribute drain latency
        # to workers vs IPC.  The report iterates dicts the drain
        # mutates, so in background mode it must not interleave with an
        # in-flight apply.
        if self._writer is not None:
            with self._writer.apply_lock:
                report["executor"] = self._engine.score_store.apply_report()
        else:
            report["executor"] = self._engine.score_store.apply_report()
        if self._writer is not None:
            report["writer"] = self._writer.report()
        index = self._engine.topk_index
        if index is not None:
            report["topk"] = {
                "k": index.k,
                "capacity": index.capacity,
                "heap_hit_rate": index.stats.heap_hit_rate(),
                "clean_query_rate": index.stats.clean_query_rate(),
                "queries": index.stats.queries,
                "shard_rescans": index.stats.shard_rescans,
                "patched_entries": index.stats.patched_entries,
                "floor_invalidations": index.stats.floor_invalidations,
                "dirty_shards": index.dirty_shards(),
            }
        return report

    def __repr__(self) -> str:
        mode = "background" if self.background else "sync"
        return (
            f"SimRankService(n={self.num_nodes}, version={self.version}, "
            f"pending={self.pending}, writer={mode})"
        )
