"""The background writer: a dedicated thread owning the drain loop.

:class:`~repro.serving.service.SimRankService` historically drained its
:class:`~repro.serving.scheduler.UpdateScheduler` synchronously on
whichever thread called :meth:`drain` — typically a reader's.
:class:`BackgroundWriter` moves that work onto one dedicated daemon
thread so the serving loop is genuinely concurrent:

* **single writer, zero reader blocking** — the thread wakes every
  ``drain_interval`` seconds (or immediately when the queue hits its
  bound), pops one coalesced batch, applies it through the engine's
  consolidated row path, and then *publishes* a fresh immutable
  :class:`~repro.serving.snapshot.SnapshotView`.  Readers pin the
  published view with a single attribute read — they never touch
  mutable state, never take the apply lock, and therefore never block
  on a drain, no matter how long it runs.  On the process executor the
  whole drain ships to the shard workers as **one** batched plan
  command (payload staged in shared memory), so a drain of ``g`` row
  groups pays one pipe round trip instead of ``g``.
* **bounded queue with backpressure** — ``max_pending`` caps the net
  queued updates.  At capacity the configured policy decides:

  ========== =========================================================
  ``block``          the submitting thread waits until a drain frees
                     space (default; lossless, propagates pushback)
  ``drop-coalesce``  accept only updates that coalesce into an
                     already-pending target row group (or cancel a
                     queued inverse); drop the rest, counted in
                     :attr:`WriterStats.dropped_updates`
  ``error``          raise :class:`~repro.exceptions.BackpressureError`
                     so the caller sheds load explicitly
  ========== =========================================================

* **fail-stop on bad batches, auto-resume on transient ones** — if the
  engine rejects a batch the updates are re-queued (nothing is lost),
  the error is stored, and the loop pauses instead of spinning on the
  same poison batch; :meth:`flush` re-raises the error and
  :meth:`clear_error` resumes immediately.  Transient failures also
  self-heal: the loop schedules its own resume with capped exponential
  backoff (``min(30, 0.5·2^k)`` seconds), counted in
  :attr:`WriterStats.resume_attempts`.  A *fatal* executor failure
  (:class:`~repro.exceptions.PoolUnrecoverableError`) is different:
  the engine's graph already advanced, so the batch is **not**
  re-queued (re-applying it would double-count), auto-resume is
  disabled, and the optional ``on_fatal`` callback gets one chance to
  fail the executor over (see the service's ``degraded_policy``) —
  if it returns True the writer republishes and keeps draining.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Iterable, Optional

from ..exceptions import (
    BackpressureError,
    ConfigError,
    PoolUnrecoverableError,
)
from ..graph.updates import EdgeUpdate
from .snapshot import SnapshotView

#: Legal backpressure policies for the bounded queue.
BACKPRESSURE_POLICIES = ("block", "drop-coalesce", "error")

#: Default writer cadence: short enough that published snapshots stay
#: fresh, long enough that tiny batches still coalesce.
DEFAULT_DRAIN_INTERVAL = 0.005

#: Default bound on net queued updates.
DEFAULT_MAX_PENDING = 4096


@dataclass
class WriterStats:
    """Lifetime counters of one :class:`BackgroundWriter`."""

    drains: int = 0
    drained_updates: int = 0
    row_groups: int = 0
    #: Largest consolidated drain this writer applied — on the process
    #: executor, the largest plan batch it shipped in one command.
    max_row_groups: int = 0
    publishes: int = 0
    blocked_submits: int = 0
    blocked_seconds: float = 0.0
    dropped_updates: int = 0
    rejected_updates: int = 0
    max_queue_depth: int = 0
    apply_seconds: float = 0.0
    max_apply_seconds: float = 0.0
    errors: int = 0
    #: Automatic resumes after transient apply failures (fatal executor
    #: failures never auto-resume; see the class docstring).
    resume_attempts: int = 0
    #: Idle-loop executor liveness probes issued.
    heartbeats: int = 0

    def mean_apply_seconds(self) -> float:
        """Mean wall-clock seconds per applied drain batch."""
        if self.drains == 0:
            return 0.0
        return self.apply_seconds / self.drains

    def mean_row_groups(self) -> float:
        """Mean consolidated row groups per applied drain batch."""
        if self.drains == 0:
            return 0.0
        return self.row_groups / self.drains


class BackgroundWriter:
    """Dedicated drain-loop thread over one engine + scheduler pair.

    Parameters
    ----------
    engine:
        The :class:`~repro.incremental.engine.DynamicSimRank` this
        writer exclusively mutates.
    scheduler:
        The coalescing queue submits land in.
    drain_interval:
        Seconds between wake-ups when the queue is below its bound.
    max_pending:
        Bound on net queued updates before backpressure applies.
    policy:
        One of :data:`BACKPRESSURE_POLICIES`.
    on_fatal:
        Optional callback invoked (under the apply lock) when a drain
        or heartbeat dies with
        :class:`~repro.exceptions.PoolUnrecoverableError`.  Return True
        to signal the executor was failed over and draining may
        continue; anything else (or raising) leaves the loop paused
        with the error stored and auto-resume disabled.
    heartbeat:
        Optional zero-argument executor liveness probe called from the
        idle loop every ``heartbeat_interval`` seconds — lets the
        writer detect a dead pool *between* drains instead of on the
        next mutation.  Failures take the same path as drain failures.
    heartbeat_interval:
        Seconds between idle liveness probes.
    on_publish:
        Optional ``callback(view)`` invoked (under the apply lock,
        right after :attr:`current_view` flips) every time a fresh
        snapshot is published.  This is how the network front door
        learns about drains without polling; callbacks must be fast and
        must not raise — exceptions are swallowed so a broken listener
        can never stall the drain loop.
    telemetry:
        A :class:`repro.telemetry.Telemetry` facade (None → the shared
        disabled instance).  Each drain observes its apply wall time
        into the ``repro_drain_apply_seconds`` histogram and records a
        ``drain.apply`` span per traced origin submission.
    trace_source:
        Optional zero-argument callable returning the trace ids of the
        traced submissions this drain folds in (the service's
        pending-origin-trace buffer).  The most recent id becomes the
        tracer's *active* trace for the duration of the apply, which is
        how the executor and the cluster pipe inherit it without any
        signature changes.
    """

    def __init__(
        self,
        engine,
        scheduler,
        drain_interval: float = DEFAULT_DRAIN_INTERVAL,
        max_pending: int = DEFAULT_MAX_PENDING,
        policy: str = "block",
        on_fatal=None,
        heartbeat=None,
        heartbeat_interval: float = 1.0,
        on_publish=None,
        on_drained=None,
        telemetry=None,
        trace_source=None,
    ) -> None:
        if policy not in BACKPRESSURE_POLICIES:
            raise ConfigError(
                f"unknown backpressure policy {policy!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}"
            )
        if drain_interval <= 0:
            raise ConfigError(
                f"drain_interval must be positive: {drain_interval}"
            )
        if max_pending < 1:
            raise ConfigError(f"max_pending must be >= 1: {max_pending}")
        if telemetry is None:
            from ..telemetry import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self._telemetry = telemetry
        self._trace_source = trace_source
        self._drain_hist = telemetry.registry.histogram(
            "repro_drain_apply_seconds",
            help="Consolidated drain apply wall time (sync + background)",
        )
        registry = telemetry.registry
        registry.gauge(
            "repro_writer_queue_depth",
            help="Net updates currently queued",
            fn=self.queue_depth,
        )
        registry.gauge(
            "repro_writer_drains",
            help="Drain batches applied",
            fn=lambda: self.stats.drains,
        )
        registry.gauge(
            "repro_writer_publishes",
            help="Snapshot views published",
            fn=lambda: self.stats.publishes,
        )
        registry.gauge(
            "repro_writer_dropped_updates",
            help="Updates dropped under the drop-coalesce policy",
            fn=lambda: self.stats.dropped_updates,
        )
        self._engine = engine
        self._scheduler = scheduler
        self.drain_interval = float(drain_interval)
        self.max_pending = int(max_pending)
        self.policy = policy
        self.stats = WriterStats()
        #: The latest published immutable view; readers pin it with one
        #: attribute read (atomic under the GIL) — never a lock.
        self.current_view: Optional[SnapshotView] = None
        self._cond = threading.Condition()
        self._wake = threading.Event()
        self._apply_lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._inflight = 0
        self._stopping = False
        self._drain_on_stop = True
        self._error: Optional[BaseException] = None
        self.on_fatal = on_fatal
        self.on_publish = on_publish
        #: Fires between the engine apply and the publish, still under
        #: the apply lock — the service's WAL-append-before-ack seam.
        self.on_drained = on_drained
        self.heartbeat = heartbeat
        self.heartbeat_interval = float(heartbeat_interval)
        self._last_heartbeat = 0.0
        #: Whether the stored error is an unrecoverable executor failure
        #: (no auto-resume; ``clear_error`` still works if the caller
        #: repaired the executor out of band).
        self._fatal = False
        self._resume_at: Optional[float] = None
        self._resume_backoff = 0

    # -------------------------------------------------------------- #
    # Lifecycle
    # -------------------------------------------------------------- #

    def start(self) -> "BackgroundWriter":
        """Publish an initial view and start the drain-loop thread.

        A writer that was previously :meth:`stop`\\ ped can be started
        again; the stop flag is reset so the new loop actually runs.
        """
        if self._thread is not None:
            raise ConfigError("background writer already started")
        with self._cond:
            self._stopping = False
            self._drain_on_stop = True
        self._wake.clear()
        self.publish()
        self._thread = threading.Thread(
            target=self._run, name="simrank-writer", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the loop; by default drain whatever is still queued.

        Raises :class:`~repro.exceptions.ConfigError` if the thread is
        still applying a batch when ``timeout`` expires — the writer
        stays registered so a second writer can never be attached to an
        engine that a zombie drain thread is still mutating.
        """
        thread = self._thread
        with self._cond:
            self._stopping = True
            self._drain_on_stop = drain
            self._cond.notify_all()
        self._wake.set()
        if thread is not None:
            thread.join(timeout)
            if thread.is_alive():
                raise ConfigError(
                    f"background writer did not stop within {timeout}s "
                    f"(a drain batch is still applying); retry stop() or "
                    f"raise the timeout"
                )
        self._thread = None

    def __enter__(self) -> "BackgroundWriter":
        if self._thread is None:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    @property
    def running(self) -> bool:
        """Whether the drain-loop thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    @property
    def apply_lock(self) -> threading.Lock:
        """Serializes engine mutation/queries against the drain loop.

        Held by the writer across apply+publish; take it for any direct
        engine access (``top_k``, ``add_node``, memory accounting) that
        must not interleave with a drain.  Readers pinning
        :attr:`current_view` never need it.
        """
        return self._apply_lock

    @property
    def busy(self) -> bool:
        """Whether work is queued or a drain batch is in flight."""
        return self._inflight > 0 or len(self._scheduler) > 0

    @property
    def last_error(self) -> Optional[BaseException]:
        """The apply failure currently pausing the loop, if any."""
        return self._error

    @property
    def paused(self) -> bool:
        """Whether the loop is paused on a stored apply failure."""
        return self._error is not None

    @property
    def fatal(self) -> bool:
        """Whether the stored failure is an unrecoverable executor one."""
        return self._error is not None and self._fatal

    def clear_error(self) -> None:
        """Resume draining after the caller repaired the queue."""
        with self._cond:
            self._error = None
            self._fatal = False
            self._resume_at = None
            self._resume_backoff = 0
            self._cond.notify_all()
        self._wake.set()

    # -------------------------------------------------------------- #
    # Write side (any thread)
    # -------------------------------------------------------------- #

    def submit(self, update: EdgeUpdate) -> bool:
        """Enqueue one update, honoring the backpressure policy.

        Returns True when the update was accepted, False when the
        ``drop-coalesce`` policy dropped it.
        """
        with self._cond:
            if self._stopping:
                raise ConfigError("background writer is stopped")
            if len(self._scheduler) >= self.max_pending:
                if self.policy == "error":
                    self.stats.rejected_updates += 1
                    self._wake.set()
                    raise BackpressureError(
                        f"update queue at capacity ({self.max_pending} "
                        f"pending) under the 'error' policy"
                    )
                if self.policy == "drop-coalesce":
                    if not self._scheduler.has_pending_target(update.target):
                        self.stats.dropped_updates += 1
                        self._wake.set()
                        return False
                else:  # block
                    self.stats.blocked_submits += 1
                    started = time.perf_counter()
                    self._wake.set()
                    while (
                        len(self._scheduler) >= self.max_pending
                        and not self._stopping
                        and self._error is None
                    ):
                        self._cond.wait(timeout=0.05)
                    self.stats.blocked_seconds += (
                        time.perf_counter() - started
                    )
                    if self._stopping:
                        raise ConfigError(
                            "background writer stopped while submit was "
                            "blocked on backpressure"
                        )
                    if self._error is not None:
                        raise self._error
            self._scheduler.submit(update)
            depth = len(self._scheduler)
            if depth > self.stats.max_queue_depth:
                self.stats.max_queue_depth = depth
            if depth >= self.max_pending:
                self._wake.set()
            return True

    def submit_many(self, updates: Iterable[EdgeUpdate]) -> int:
        """Enqueue a stream; returns how many updates were accepted."""
        accepted = 0
        for update in updates:
            accepted += bool(self.submit(update))
        return accepted

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Block until everything queued so far is applied and published.

        Returns True when the queue fully drained, False on timeout.
        Re-raises the stored apply error if the loop is paused on one.
        """
        self._wake.set()
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if self._error is not None:
                    raise self._error
                if len(self._scheduler) == 0 and self._inflight == 0:
                    return True
                if not self.running:
                    raise ConfigError(
                        "background writer is not running; nothing will "
                        "drain the queue"
                    )
                if deadline is not None and time.monotonic() >= deadline:
                    return False
                self._cond.wait(timeout=0.05)

    # -------------------------------------------------------------- #
    # Drain loop (writer thread)
    # -------------------------------------------------------------- #

    def _run(self) -> None:
        while True:
            self._wake.wait(self.drain_interval)
            self._wake.clear()
            batch = None
            with self._cond:
                stopping = self._stopping
                if (
                    self._error is not None
                    and not self._fatal
                    and self._resume_at is not None
                    and time.monotonic() >= self._resume_at
                ):
                    # Auto-resume after a transient failure: the batch
                    # was re-queued, so retrying is lossless.
                    self._error = None
                    self._resume_at = None
                    self.stats.resume_attempts += 1
                    self._cond.notify_all()
                paused = self._error is not None
                if not paused and (not stopping or self._drain_on_stop):
                    candidate = self._scheduler.drain()
                    if len(candidate):
                        batch = candidate
                        self._inflight = len(candidate)
            if batch is not None:
                self._apply(batch)
            elif not stopping and not paused:
                self._maybe_heartbeat()
            if stopping:
                with self._cond:
                    done = (
                        self._error is not None
                        or not self._drain_on_stop
                        or len(self._scheduler) == 0
                    )
                if done:
                    return

    def _maybe_heartbeat(self) -> None:
        """Probe executor liveness from the idle loop (best effort)."""
        if self.heartbeat is None:
            return
        now = time.monotonic()
        if now - self._last_heartbeat < self.heartbeat_interval:
            return
        self._last_heartbeat = now
        try:
            with self._apply_lock:
                self.stats.heartbeats += 1
                self.heartbeat()
        except Exception as exc:
            self._on_failure(exc, batch=None)

    def _on_failure(self, exc: BaseException, batch) -> None:
        """Route one drain/heartbeat failure: failover, requeue, pause.

        Fatal pool failures never re-queue the batch — the engine's
        graph already advanced for it and the pool's journal + the
        engine's stashes carry the score side, so re-submitting would
        apply the same updates twice after a rebuild.
        """
        fatal = isinstance(exc, PoolUnrecoverableError)
        handled = False
        if fatal and self.on_fatal is not None:
            try:
                with self._apply_lock:
                    handled = bool(self.on_fatal(exc))
                    if handled:
                        self.publish()
            except Exception:
                handled = False
        with self._cond:
            self.stats.errors += 1
            if handled:
                # The executor was failed over and the interrupted
                # drain completed through the engine's stashes: account
                # the batch as drained and keep the loop running.
                if batch is not None:
                    self.stats.drains += 1
                    self.stats.drained_updates += len(batch)
                self._inflight = 0
                self._cond.notify_all()
                return
            if batch is not None and not fatal:
                # Transient failure: nothing was journaled or applied,
                # so re-queue losslessly and schedule an auto-resume
                # with capped exponential backoff.
                self._scheduler.submit_many(batch)
            if not fatal:
                self._resume_at = time.monotonic() + min(
                    30.0, 0.5 * 2.0**self._resume_backoff
                )
                self._resume_backoff += 1
            else:
                self._resume_at = None
            self._inflight = 0
            self._error = exc
            self._fatal = fatal
            self._cond.notify_all()

    def _apply(self, batch) -> None:
        traces = self._trace_source() if self._trace_source else []
        tracer = self._telemetry.tracer
        # The most recent traced submission becomes the drain's active
        # trace: the baton rides engine → executor → cluster pipe, so
        # worker-side apply spans land in the submitter's trace.
        tracer.set_active(traces[-1] if traces else None)
        started = time.perf_counter()
        try:
            with self._apply_lock:
                groups = self._engine.apply_consolidated(batch)
                if self.on_drained is not None:
                    self.on_drained()
                self.publish()
        except Exception as exc:
            # Pause instead of spinning on the same poison batch; see
            # _on_failure for the requeue/failover split.
            self._on_failure(exc, batch)
            return
        finally:
            tracer.set_active(None)
        elapsed = time.perf_counter() - started
        self._drain_hist.observe(elapsed)
        for trace_id in traces:
            tracer.record(
                "drain.apply",
                trace_id,
                elapsed,
                fan_in=len(traces),
                updates=len(batch),
                groups=groups,
            )
        with self._cond:
            self._inflight = 0
            self._resume_backoff = 0
            self.stats.drains += 1
            self.stats.drained_updates += len(batch)
            self.stats.row_groups += groups
            if groups > self.stats.max_row_groups:
                self.stats.max_row_groups = groups
            self.stats.apply_seconds += elapsed
            if elapsed > self.stats.max_apply_seconds:
                self.stats.max_apply_seconds = elapsed
            self._cond.notify_all()

    def publish(self) -> SnapshotView:
        """Pin the engine's current version and publish it for readers.

        Caller must hold :attr:`apply_lock` or otherwise guarantee the
        engine is quiescent (the drain loop publishes inside the lock;
        :meth:`start` publishes before the thread exists).
        """
        view = SnapshotView(
            scores=self._engine.score_store.snapshot(),
            transitions=self._engine.transition_store.snapshot(),
            config=self._engine.config,
            version=self._engine.version,
        )
        self.current_view = view
        self.stats.publishes += 1
        if self.on_publish is not None:
            try:
                self.on_publish(view)
            except Exception:
                pass  # a broken listener must never stall the drain loop
        return view

    # -------------------------------------------------------------- #
    # Introspection
    # -------------------------------------------------------------- #

    def queue_depth(self) -> int:
        """Net updates currently queued (excluding an in-flight batch)."""
        return len(self._scheduler)

    def report(self) -> dict:
        """JSON-friendly configuration + counters summary."""
        return {
            "policy": self.policy,
            "drain_interval_seconds": self.drain_interval,
            "max_pending": self.max_pending,
            "queue_depth": self.queue_depth(),
            "running": self.running,
            "drains": self.stats.drains,
            "drained_updates": self.stats.drained_updates,
            "row_groups": self.stats.row_groups,
            "max_row_groups": self.stats.max_row_groups,
            "mean_row_groups": self.stats.mean_row_groups(),
            "publishes": self.stats.publishes,
            "blocked_submits": self.stats.blocked_submits,
            "blocked_seconds": self.stats.blocked_seconds,
            "dropped_updates": self.stats.dropped_updates,
            "rejected_updates": self.stats.rejected_updates,
            "max_queue_depth": self.stats.max_queue_depth,
            "mean_apply_seconds": self.stats.mean_apply_seconds(),
            "max_apply_seconds": self.stats.max_apply_seconds,
            "errors": self.stats.errors,
            "writer_paused": self.paused,
            "fatal": self.fatal,
            "resume_attempts": self.stats.resume_attempts,
            "heartbeats": self.stats.heartbeats,
        }

    def __repr__(self) -> str:
        return (
            f"BackgroundWriter(policy={self.policy!r}, "
            f"interval={self.drain_interval}, pending={self.queue_depth()}, "
            f"running={self.running})"
        )
