"""Reader-side pins: :class:`SnapshotView` at one frozen version.

A view bundles a copy-on-write
:class:`~repro.executor.score_store.ScoreSnapshot` of ``S`` with a
frozen :class:`~repro.linalg.qstore.TransitionSnapshot` of ``Q`` and
serves the full read API at that version: point lookups, full-matrix
export, top-k ranking, and the single-source / single-pair walk queries
(computed against the frozen ``Q``, so a pinned reader's answers never
shift under concurrent writes).

Pinning is cheap — O(#shards) bookkeeping, no score copying — and the
bit-stability guarantee is structural: the writer clones any shard it
touches before writing, so the arrays this view references are never
mutated again.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..config import SimRankConfig
from ..executor.score_store import ScoreSnapshot
from ..linalg.qstore import TransitionSnapshot


class SnapshotView:
    """All reads of one frozen ``(S, Q)`` version."""

    def __init__(
        self,
        scores: ScoreSnapshot,
        transitions: TransitionSnapshot,
        config: SimRankConfig,
        version: int,
    ) -> None:
        self._scores = scores
        self._transitions = transitions
        self._config = config
        self._version = int(version)

    # -------------------------------------------------------------- #
    # Identity
    # -------------------------------------------------------------- #

    @property
    def version(self) -> int:
        """The engine version this view is pinned at."""
        return self._version

    @property
    def num_nodes(self) -> int:
        return self._scores.num_nodes

    @property
    def config(self) -> SimRankConfig:
        return self._config

    @property
    def scores(self) -> ScoreSnapshot:
        """The underlying frozen score shards."""
        return self._scores

    @property
    def transitions(self) -> TransitionSnapshot:
        """The underlying frozen transition matrix."""
        return self._transitions

    # -------------------------------------------------------------- #
    # Score reads (frozen S)
    # -------------------------------------------------------------- #

    def similarity(self, node_a: int, node_b: int) -> float:
        """The frozen SimRank score of one node pair."""
        return self._scores.entry(node_a, node_b)

    def similarities(self) -> np.ndarray:
        """The full frozen score matrix (a fresh copy)."""
        return self._scores.to_array()

    def similarity_row(self, node: int) -> np.ndarray:
        """Frozen row ``[S]_{node,:}`` (a copy)."""
        return self._scores.row(node)

    def top_k(self, k: int, include_self: bool = False) -> List[Tuple[int, int, float]]:
        """Top-``k`` most similar node pairs at the frozen version.

        Served by the shard-merge path: candidates are selected one
        frozen row block at a time and k-way merged, so the ranking is
        bit-identical to a dense :func:`~repro.metrics.topk.top_k_pairs`
        scan without ever materializing the O(n²) matrix.
        """
        from ..executor.topk_index import top_k_from_blocks

        return top_k_from_blocks(
            self._scores.iter_blocks(), k, include_self=include_self
        )

    # -------------------------------------------------------------- #
    # Walk queries (frozen Q)
    # -------------------------------------------------------------- #

    def single_source(self, node: int) -> np.ndarray:
        """Series-form single-source scores against the frozen ``Q``."""
        from ..simrank.queries import single_source_simrank

        return single_source_simrank(self._transitions, node, self._config)

    def single_pair(self, node_a: int, node_b: int) -> float:
        """Series-form single-pair score against the frozen ``Q``."""
        from ..simrank.queries import single_pair_simrank

        return single_pair_simrank(
            self._transitions, node_a, node_b, self._config
        )

    def top_k_similar(self, node: int, k: int) -> List[Tuple[int, float]]:
        """The ``k`` nodes most similar to ``node`` at the frozen version."""
        from ..simrank.queries import top_k_similar_nodes

        return top_k_similar_nodes(self._transitions, node, k, self._config)

    # -------------------------------------------------------------- #
    # Accounting
    # -------------------------------------------------------------- #

    def nbytes(self) -> int:
        """Bytes pinned by this view (score shards + frozen Q arrays)."""
        return self._scores.nbytes() + self._transitions.nbytes()

    def __repr__(self) -> str:
        return (
            f"SnapshotView(version={self._version}, "
            f"n={self.num_nodes})"
        )
