"""Typed query envelopes and the exception→HTTP-status taxonomy.

One request/response shape serves both surfaces: the in-process API
(:meth:`SimRankService.query` takes a :class:`QueryRequest` and returns
a :class:`QueryResult`) and the network front door (the HTTP JSON wire
format is exactly ``QueryRequest.to_dict()`` in and
``QueryResult.to_dict()`` out).  Because the dataclasses are shared
verbatim, an answer computed in-process and an answer parsed off the
wire are the same object shape carrying the same bit-exact values —
JSON float serialization uses ``repr`` round-tripping, so float64
scores survive the wire unchanged.

The error side is likewise shared: :data:`ERROR_STATUS` maps the
library's exception hierarchy onto HTTP status codes once, so
"queue full" means 429 and "degraded pool" means 503 whether the caller
sees the exception object or the wire status.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from typing import Optional, Tuple

import numpy as np

from ..exceptions import (
    BackpressureError,
    ConfigError,
    DegradedModeError,
    DimensionError,
    EdgeExistsError,
    EdgeNotFoundError,
    GraphError,
    HistoryUnavailableError,
    NodeNotFoundError,
    PoolUnrecoverableError,
    ProtocolError,
    ReproError,
    ServiceClosedError,
    SessionNotFoundError,
)

#: Legal query kinds.  ``similarity`` reads one precomputed score from
#: the pinned ``S`` shards; ``single_pair``/``single_source`` evaluate
#: the series form against the pinned ``Q``; ``top_k`` ranks pairs.
QUERY_KINDS = ("similarity", "single_pair", "single_source", "top_k")

#: Which envelope fields each kind requires.
_REQUIRED_BY_KIND = {
    "similarity": ("node_a", "node_b"),
    "single_pair": ("node_a", "node_b"),
    "single_source": ("node",),
    "top_k": ("k",),
}

#: The exception→HTTP-status taxonomy, first match wins.  Shared by the
#: in-process API (where the exception itself is the contract) and the
#: wire (where the status code is):
#:
#: ======================== ======
#: ``BackpressureError``     429
#: ``DegradedModeError``     503
#: ``ServiceClosedError``    503
#: ``PoolUnrecoverableError`` 503
#: ``SessionNotFoundError``  404
#: ``NodeNotFoundError``     404
#: ``EdgeNotFoundError``     404
#: ``HistoryUnavailableError`` 404
#: ``EdgeExistsError``       409
#: ``ProtocolError``         400
#: ``ConfigError``           400
#: ``DimensionError``        400
#: ``GraphError``            400
#: ``ReproError``            500
#: ======================== ======
ERROR_STATUS: Tuple[Tuple[type, int], ...] = (
    (BackpressureError, 429),
    (DegradedModeError, 503),
    (ServiceClosedError, 503),
    (PoolUnrecoverableError, 503),
    (SessionNotFoundError, 404),
    (NodeNotFoundError, 404),
    (EdgeNotFoundError, 404),
    (HistoryUnavailableError, 404),
    (EdgeExistsError, 409),
    (ProtocolError, 400),
    (ConfigError, 400),
    (DimensionError, 400),
    (GraphError, 400),
    (ReproError, 500),
)


def http_status(exc: BaseException) -> int:
    """The HTTP status code for one library exception (500 fallback)."""
    for exc_type, status in ERROR_STATUS:
        if isinstance(exc, exc_type):
            return status
    return 500


def error_body(exc: BaseException) -> dict:
    """The wire JSON body for one failed request."""
    return {
        "error": type(exc).__name__,
        "message": str(exc),
        "status": http_status(exc),
    }


def _coerce_index(name: str, value) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigError(
            f"query field {name!r} must be an integer, got {value!r}"
        )
    return int(value)


@dataclass(frozen=True)
class QueryRequest:
    """One read request, identical in-process and on the wire.

    Parameters
    ----------
    kind:
        One of :data:`QUERY_KINDS`.
    node_a, node_b:
        The pair for ``similarity``/``single_pair``.
    node:
        The source for ``single_source``.
    k:
        The ranking size for ``top_k``.
    session:
        Optional pinned-session id; the front door executes the query
        against that session's frozen view instead of a fresh snapshot.
    id:
        Optional caller-chosen correlation id, echoed on the result.
    trace_id:
        Optional request-trace id (:mod:`repro.telemetry`).  The front
        door fills it from the ``X-Trace-Id`` header (or mints one when
        sampled); admission, pin, and gather spans are recorded under
        it.  ``None`` means the request is untraced; the field is
        dropped from the wire payload, so pre-telemetry clients and
        servers interoperate unchanged.
    """

    kind: str
    node_a: Optional[int] = None
    node_b: Optional[int] = None
    node: Optional[int] = None
    k: Optional[int] = None
    session: Optional[str] = None
    id: Optional[str] = None
    trace_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in QUERY_KINDS:
            raise ConfigError(
                f"unknown query kind {self.kind!r}; expected one of "
                f"{QUERY_KINDS}"
            )
        for name in _REQUIRED_BY_KIND[self.kind]:
            value = getattr(self, name)
            if value is None:
                raise ConfigError(
                    f"query kind {self.kind!r} requires field {name!r}"
                )
            object.__setattr__(self, name, _coerce_index(name, value))
        if self.trace_id is not None and not isinstance(self.trace_id, str):
            raise ConfigError(
                f"trace_id must be a string, got {self.trace_id!r}"
            )

    @property
    def batchable(self) -> bool:
        """Whether the admission batcher may vectorize this kind."""
        return self.kind in ("similarity", "single_source")

    def to_dict(self) -> dict:
        """JSON-safe payload (None fields dropped)."""
        return {
            spec.name: getattr(self, spec.name)
            for spec in fields(self)
            if getattr(self, spec.name) is not None
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QueryRequest":
        """Parse a wire payload; unknown keys are a 400-class error."""
        if not isinstance(payload, dict):
            raise ConfigError(
                f"query must be a JSON object, got {type(payload).__name__}"
            )
        known = {spec.name for spec in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(f"unknown query fields: {sorted(unknown)}")
        if "kind" not in payload:
            raise ConfigError("query is missing the 'kind' field")
        return cls(**payload)


@dataclass(frozen=True)
class QueryResult:
    """One read answer, identical in-process and on the wire.

    ``value`` is a float (``similarity``/``single_pair``), a list of
    per-node scores (``single_source``), or a list of
    ``[a, b, score]`` triples (``top_k``).  ``version`` is the engine
    version the answer was computed at; ``batched``/``batch_size``
    record whether the admission batcher vectorized the execution.
    """

    kind: str
    value: object
    version: int
    elapsed_seconds: float = 0.0
    id: Optional[str] = None
    batched: bool = False
    batch_size: int = 1

    def to_dict(self) -> dict:
        """JSON-safe payload (ndarray values become lists)."""
        value = self.value
        if isinstance(value, np.ndarray):
            value = [float(entry) for entry in value]
        elif isinstance(value, list) and value and isinstance(value[0], tuple):
            value = [[int(a), int(b), float(s)] for a, b, s in value]
        elif isinstance(value, np.floating):
            value = float(value)
        payload = {
            "kind": self.kind,
            "value": value,
            "version": self.version,
            "elapsed_seconds": self.elapsed_seconds,
            "batched": self.batched,
            "batch_size": self.batch_size,
        }
        if self.id is not None:
            payload["id"] = self.id
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "QueryResult":
        """Parse a wire payload back into a result envelope."""
        if not isinstance(payload, dict):
            raise ConfigError(
                f"result must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        value = payload.get("value")
        if (
            isinstance(value, list)
            and value
            and isinstance(value[0], list)
            and len(value[0]) == 3
        ):
            value = [(int(a), int(b), float(s)) for a, b, s in value]
        return cls(
            kind=payload["kind"],
            value=value,
            version=int(payload["version"]),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            id=payload.get("id"),
            batched=bool(payload.get("batched", False)),
            batch_size=int(payload.get("batch_size", 1)),
        )


def execute_query(view, request: QueryRequest) -> object:
    """Run one request against a pinned view; returns the raw value.

    ``view`` is anything with the :class:`SnapshotView` read surface.
    The same function backs the in-process API, the front door's
    unbatched path, and the demultiplexed tail of a batched admission —
    so every path computes answers with identical arithmetic.
    """
    if request.kind == "similarity":
        return view.similarity(request.node_a, request.node_b)
    if request.kind == "single_pair":
        return view.single_pair(request.node_a, request.node_b)
    if request.kind == "single_source":
        return view.single_source(request.node)
    return view.top_k(request.k)


def run_query(view, request: QueryRequest) -> QueryResult:
    """Execute one request against a view and wrap the envelope."""
    started = time.perf_counter()
    value = execute_query(view, request)
    return QueryResult(
        kind=request.kind,
        value=value,
        version=view.version,
        elapsed_seconds=time.perf_counter() - started,
        id=request.id,
    )
