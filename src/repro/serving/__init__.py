"""Service layer — versioned snapshot reads and coalesced queued writes.

The ROADMAP's north star is serving heavy query traffic while links
evolve.  This package puts the read/write split on top of the engine:

* :mod:`repro.serving.snapshot` — :class:`SnapshotView`, a reader's pin
  on one frozen ``(S, Q)`` version.  Served from the score store's
  copy-on-write shards and the transition store's abandoned packed
  views, so pinning is O(#shards) and a pinned view is bit-stable no
  matter what the writer does.
* :mod:`repro.serving.scheduler` — :class:`UpdateScheduler`, the
  write-side queue.  Drains coalesce same-target edge updates into
  composite row groups (and cancel inverse pairs outright), feeding the
  engine's consolidated rank-one path.
* :mod:`repro.serving.writer` — :class:`BackgroundWriter`, a dedicated
  drain-loop thread with a bounded queue and configurable backpressure
  (``block`` / ``drop-coalesce`` / ``error``).  It publishes immutable
  snapshot views after every drain, so readers never block on a drain.
* :mod:`repro.serving.service` — :class:`SimRankService`, the
  single-writer/many-readers session: ``submit`` enqueues, ``drain``
  (sync mode) or the background writer applies coalesced batches,
  ``snapshot`` pins the current version.  When the process executor's
  worker pool becomes unrecoverable the service degrades gracefully
  per its ``degraded_policy`` (:data:`DEGRADED_POLICIES`): reads keep
  serving the last consistent view, mutations raise
  :class:`~repro.exceptions.DegradedModeError` (or queue), or the
  score state is rebuilt in-process and writing resumes.
* :mod:`repro.serving.config` — :class:`ServiceConfig` /
  :class:`FrontDoorConfig`, the typed, validated, JSON-round-trippable
  deployment shape (``SimRankService(config=...)`` and
  ``serve --config service.json`` consume the same file).
* :mod:`repro.serving.envelopes` — :class:`QueryRequest` /
  :class:`QueryResult`, the one request/response shape shared by the
  in-process API and the network front door's JSON wire, plus the
  exception→HTTP-status taxonomy.
"""

from .config import (
    DEGRADED_POLICIES,
    EXECUTOR_MODES,
    PRECISION_MODES,
    WRITER_MODES,
    DurabilityConfig,
    FrontDoorConfig,
    ServiceConfig,
    TelemetryConfig,
    resolve_service_config,
)
from .envelopes import (
    ERROR_STATUS,
    QUERY_KINDS,
    QueryRequest,
    QueryResult,
    error_body,
    http_status,
)
from .scheduler import SchedulerStats, UpdateScheduler
from .service import SimRankService
from .snapshot import SnapshotView
from .writer import BACKPRESSURE_POLICIES, BackgroundWriter, WriterStats

__all__ = [
    "SimRankService",
    "SnapshotView",
    "UpdateScheduler",
    "SchedulerStats",
    "BackgroundWriter",
    "WriterStats",
    "ServiceConfig",
    "FrontDoorConfig",
    "TelemetryConfig",
    "DurabilityConfig",
    "resolve_service_config",
    "QueryRequest",
    "QueryResult",
    "QUERY_KINDS",
    "ERROR_STATUS",
    "http_status",
    "error_body",
    "BACKPRESSURE_POLICIES",
    "DEGRADED_POLICIES",
    "WRITER_MODES",
    "EXECUTOR_MODES",
    "PRECISION_MODES",
]
