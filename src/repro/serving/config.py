"""Typed, validated, JSON-round-trippable service configuration.

:class:`SimRankService` accumulated a kwarg sprawl over the PRs that
grew it — writer mode, drain cadence, backpressure, executor choice,
worker count, batching, degraded policy, precision, … — and the
``serve`` CLI re-declared every knob as a flag.  :class:`ServiceConfig`
is the single typed source of truth for all of it:

* **validated once** — every field is checked at construction against
  the same legal domains the service enforces, so a bad config fails
  with :class:`~repro.exceptions.ConfigError` before any state is
  built;
* **JSON round-trippable** — :meth:`ServiceConfig.to_dict` /
  :meth:`ServiceConfig.from_dict` (and :meth:`save` / :meth:`load`)
  carry the full deployment shape through a config file, so
  ``SimRankService(config=ServiceConfig.load(path))`` and
  ``serve --config service.json`` describe identical services;
* **compatible** — the historical keyword arguments still work: the
  service builds a config from them, and passing *both* an explicit
  :class:`ServiceConfig` and a conflicting legacy kwarg raises
  :class:`~repro.exceptions.ConfigError` instead of silently picking
  one.

:class:`FrontDoorConfig` nests the network-layer knobs (bind address,
admission window, session TTL) so one file configures the whole stack,
service plus front door.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Optional

from ..config import DEFAULT_DAMPING, DEFAULT_ITERATIONS, SimRankConfig
from ..exceptions import ConfigError
from .writer import (
    BACKPRESSURE_POLICIES,
    DEFAULT_DRAIN_INTERVAL,
    DEFAULT_MAX_PENDING,
)

#: Legal writer modes (sync = caller-driven drains, background = a
#: dedicated :class:`~repro.serving.writer.BackgroundWriter` thread).
WRITER_MODES = ("sync", "background")

#: Legal executor choices for the score shards.
EXECUTOR_MODES = ("inproc", "process")

#: What the service does when the shard-worker pool becomes
#: unrecoverable mid-serve:
#:
#: ========== ========================================================
#: ``reject``  stay up read-only — reads keep serving the last
#:             consistent view, mutations raise
#:             :class:`~repro.exceptions.DegradedModeError`
#: ``queue``   like ``reject``, but submits keep landing in the
#:             coalescing queue for a later repaired drain
#: ``rebuild`` fail over: rebuild an in-process score store from the
#:             pool's frozen base + journal and keep writing without
#:             the pool (bit-identical scores)
#: ========== ========================================================
DEGRADED_POLICIES = ("reject", "queue", "rebuild")

#: Score-store precision modes: ``float64`` (the bit-identity
#: reference, default), ``float32`` (uniform demotion, caller-asserted
#: accuracy), or ``auto`` (consume — or search for — an accuracy-gated
#: :class:`~repro.tuning.precision.PrecisionPlan`).
PRECISION_MODES = ("float64", "float32", "auto")

#: Default admission window: how long the front door holds the first
#: query of a batch open for concurrent arrivals to join (seconds).
DEFAULT_ADMISSION_WINDOW = 0.002

#: Default idle TTL of a pinned-snapshot session (seconds).
DEFAULT_SESSION_TTL = 30.0


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class TelemetryConfig:
    """Runtime-telemetry knobs (:mod:`repro.telemetry`).

    Parameters
    ----------
    enabled:
        ``False`` swaps every instrument for the shared no-op
        singletons — tracing, histograms, and flight recording all cost
        one empty method call.  The front-door stats keep their own
        attribute counters, so the JSON ``/metrics`` report is
        unchanged either way.
    trace_sample_rate:
        Fraction of *minted* trace ids that record spans (deterministic
        on the id, so all layers and processes agree).  Explicit
        ``X-Trace-Id`` headers are always sampled.
    trace_capacity:
        Span-ring size (oldest spans are dropped first).
    flight_capacity:
        Flight-recorder event-ring size.
    flight_dir:
        Directory flight dumps are written into (``None`` = CWD).
    """

    enabled: bool = True
    trace_sample_rate: float = 1.0
    trace_capacity: int = 512
    flight_capacity: int = 256
    flight_dir: Optional[str] = None

    def __post_init__(self) -> None:
        _require(
            isinstance(self.enabled, bool),
            f"telemetry enabled must be a bool: {self.enabled!r}",
        )
        _require(
            0.0 <= float(self.trace_sample_rate) <= 1.0,
            "trace_sample_rate must be in [0, 1]: "
            f"{self.trace_sample_rate!r}",
        )
        _require(
            int(self.trace_capacity) >= 1,
            f"trace_capacity must be >= 1: {self.trace_capacity!r}",
        )
        _require(
            int(self.flight_capacity) >= 1,
            f"flight_capacity must be >= 1: {self.flight_capacity!r}",
        )
        _require(
            self.flight_dir is None or isinstance(self.flight_dir, str),
            f"flight_dir must be None or a string: {self.flight_dir!r}",
        )

    def to_dict(self) -> dict:
        """JSON-safe payload (the exact :meth:`from_dict` input)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "TelemetryConfig":
        """Rebuild from :meth:`to_dict`; unknown keys are an error."""
        if not isinstance(payload, dict):
            raise ConfigError(
                f"telemetry config must be a dict, got "
                f"{type(payload).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(
                f"unknown telemetry config keys: {sorted(unknown)}"
            )
        return cls(**payload)


@dataclass(frozen=True)
class FrontDoorConfig:
    """Network-front-door knobs (HTTP/WebSocket layer).

    Parameters
    ----------
    host, port:
        Bind address.  Port 0 picks an ephemeral port (the bound port
        is reported once the server starts).
    admission_window:
        Seconds the admission batcher holds the first queued query so
        concurrent arrivals can join the same snapshot-pinned batched
        execution.  0 disables batching (every query executes alone).
        Larger windows raise batch sizes (fewer BLAS calls under load)
        at the cost of adding up to one window to p99.
    admission_max_batch:
        Hard cap on queries per admission batch; a full batch flushes
        immediately instead of waiting out the window.
    session_ttl:
        Default idle seconds before a pinned-snapshot session is
        released (each request on the session refreshes the clock).
    max_sessions:
        Cap on concurrently pinned sessions (each pins COW score
        shards, so this bounds reader-held memory).
    subscription_max_k:
        Largest ``k`` a top-k subscription may request.
    """

    host: str = "127.0.0.1"
    port: int = 0
    admission_window: float = DEFAULT_ADMISSION_WINDOW
    admission_max_batch: int = 256
    session_ttl: float = DEFAULT_SESSION_TTL
    max_sessions: int = 1024
    subscription_max_k: int = 100

    def __post_init__(self) -> None:
        _require(
            isinstance(self.host, str) and bool(self.host),
            f"frontdoor host must be a non-empty string: {self.host!r}",
        )
        _require(
            0 <= int(self.port) <= 65535,
            f"frontdoor port must be in [0, 65535]: {self.port!r}",
        )
        _require(
            self.admission_window >= 0,
            f"admission_window must be >= 0: {self.admission_window!r}",
        )
        _require(
            int(self.admission_max_batch) >= 1,
            f"admission_max_batch must be >= 1: {self.admission_max_batch!r}",
        )
        _require(
            self.session_ttl > 0,
            f"session_ttl must be positive: {self.session_ttl!r}",
        )
        _require(
            int(self.max_sessions) >= 1,
            f"max_sessions must be >= 1: {self.max_sessions!r}",
        )
        _require(
            int(self.subscription_max_k) >= 1,
            f"subscription_max_k must be >= 1: {self.subscription_max_k!r}",
        )

    def to_dict(self) -> dict:
        """JSON-safe payload (the exact :meth:`from_dict` input)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "FrontDoorConfig":
        """Rebuild from :meth:`to_dict`; unknown keys are an error."""
        if not isinstance(payload, dict):
            raise ConfigError(
                f"frontdoor config must be a dict, got "
                f"{type(payload).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(
                f"unknown frontdoor config keys: {sorted(unknown)}"
            )
        return cls(**payload)


@dataclass(frozen=True)
class DurabilityConfig:
    """Durable-persistence knobs (:mod:`repro.durability`).

    Parameters
    ----------
    data_dir:
        The durability root: WAL segments, checkpoints, manifest, and
        the single-writer lock all live under this directory.  A dir
        holding a valid manifest is *restored from* at service
        construction (the caller's graph/scores seed only a fresh dir).
    fsync:
        One of ``always`` / ``interval`` / ``off`` — when appended WAL
        frames are forced to stable storage.  Every policy flushes to
        the OS per append, so process death (SIGKILL) loses nothing;
        the policy only decides exposure to machine/power failure.
    fsync_interval:
        Seconds between forced syncs under the ``interval`` policy.
    checkpoint_interval:
        Acked drains between checkpoints (the WAL-lag budget a restart
        must replay).
    rotate_bytes:
        WAL segment size before rotation.
    retain_checkpoints:
        Checkpoints (and the WAL segments bridging them) kept for
        time-travel reads; older versions are pruned.
    svd_history:
        Write a git_theta-style SVD-truncated summary of each
        checkpoint interval's factor history (``history.npz``).
    svd_max_rank, svd_threshold:
        Truncation knobs for that summary: hard rank cap, and the
        relative singular-value floor below which components drop.
    """

    data_dir: str = ""
    fsync: str = "interval"
    fsync_interval: float = 0.05
    checkpoint_interval: int = 64
    rotate_bytes: int = 4 * 1024 * 1024
    retain_checkpoints: int = 2
    svd_history: bool = False
    svd_max_rank: int = 32
    svd_threshold: float = 1e-11

    def __post_init__(self) -> None:
        _require(
            isinstance(self.data_dir, str) and bool(self.data_dir),
            f"durability data_dir must be a non-empty string: "
            f"{self.data_dir!r}",
        )
        _require(
            self.fsync in ("always", "interval", "off"),
            f"unknown fsync policy {self.fsync!r}; expected one of "
            "('always', 'interval', 'off')",
        )
        _require(
            self.fsync_interval > 0,
            f"fsync_interval must be positive: {self.fsync_interval!r}",
        )
        _require(
            int(self.checkpoint_interval) >= 1,
            f"checkpoint_interval must be >= 1: "
            f"{self.checkpoint_interval!r}",
        )
        _require(
            int(self.rotate_bytes) >= 4096,
            f"rotate_bytes must be >= 4096: {self.rotate_bytes!r}",
        )
        _require(
            int(self.retain_checkpoints) >= 1,
            f"retain_checkpoints must be >= 1: "
            f"{self.retain_checkpoints!r}",
        )
        _require(
            isinstance(self.svd_history, bool),
            f"svd_history must be a bool: {self.svd_history!r}",
        )
        _require(
            int(self.svd_max_rank) >= 1,
            f"svd_max_rank must be >= 1: {self.svd_max_rank!r}",
        )
        _require(
            0 < float(self.svd_threshold) < 1,
            f"svd_threshold must be in (0, 1): {self.svd_threshold!r}",
        )

    def to_dict(self) -> dict:
        """JSON-safe payload (the exact :meth:`from_dict` input)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "DurabilityConfig":
        """Rebuild from :meth:`to_dict`; unknown keys are an error."""
        if not isinstance(payload, dict):
            raise ConfigError(
                f"durability config must be a dict, got "
                f"{type(payload).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(
                f"unknown durability config keys: {sorted(unknown)}"
            )
        return cls(**payload)


@dataclass(frozen=True)
class ServiceConfig:
    """The full deployment shape of one :class:`SimRankService`.

    Every field mirrors a (former) ``SimRankService.__init__`` keyword;
    see that class for per-knob semantics.  ``damping``/``iterations``
    carry the SimRank algorithm configuration so one JSON file
    describes the whole service (:meth:`simrank_config` derives the
    :class:`~repro.config.SimRankConfig`).
    """

    damping: float = DEFAULT_DAMPING
    iterations: int = DEFAULT_ITERATIONS
    shard_rows: Optional[int] = None
    writer: str = "sync"
    drain_interval: float = DEFAULT_DRAIN_INTERVAL
    max_pending: int = DEFAULT_MAX_PENDING
    backpressure: str = "block"
    executor: str = "inproc"
    workers: int = 2
    start_method: Optional[str] = None
    plan_batching: bool = True
    executor_options: Optional[dict] = None
    degraded_policy: str = "reject"
    precision: str = "float64"
    #: A :class:`~repro.tuning.precision.PrecisionPlan`, its
    #: ``to_dict()`` payload, or a path to a saved plan file; only read
    #: when ``precision="auto"``.
    precision_plan: object = None
    frontdoor: Optional[FrontDoorConfig] = field(default=None)
    telemetry: Optional[TelemetryConfig] = field(default=None)
    durability: Optional[DurabilityConfig] = field(default=None)

    def __post_init__(self) -> None:
        # Delegate damping/iterations validation to SimRankConfig.
        SimRankConfig(damping=self.damping, iterations=self.iterations)
        _require(
            self.shard_rows is None or int(self.shard_rows) >= 1,
            f"shard_rows must be None or >= 1: {self.shard_rows!r}",
        )
        _require(
            self.writer in WRITER_MODES,
            f"unknown writer mode {self.writer!r}; expected one of "
            f"{WRITER_MODES}",
        )
        _require(
            self.drain_interval > 0,
            f"drain_interval must be positive: {self.drain_interval!r}",
        )
        _require(
            int(self.max_pending) >= 1,
            f"max_pending must be >= 1: {self.max_pending!r}",
        )
        _require(
            self.backpressure in BACKPRESSURE_POLICIES,
            f"unknown backpressure policy {self.backpressure!r}; expected "
            f"one of {BACKPRESSURE_POLICIES}",
        )
        _require(
            self.executor in EXECUTOR_MODES,
            f"unknown executor {self.executor!r}; expected one of "
            f"{EXECUTOR_MODES}",
        )
        _require(
            int(self.workers) >= 1,
            f"workers must be >= 1: {self.workers!r}",
        )
        _require(
            self.start_method is None or isinstance(self.start_method, str),
            f"start_method must be None or a string: {self.start_method!r}",
        )
        _require(
            self.executor_options is None
            or isinstance(self.executor_options, dict),
            "executor_options must be None or a dict: "
            f"{self.executor_options!r}",
        )
        _require(
            self.degraded_policy in DEGRADED_POLICIES,
            f"unknown degraded policy {self.degraded_policy!r}; expected "
            f"one of {DEGRADED_POLICIES}",
        )
        _require(
            self.precision in PRECISION_MODES,
            f"unknown precision {self.precision!r}; expected one of "
            f"{PRECISION_MODES}",
        )
        if self.frontdoor is not None and not isinstance(
            self.frontdoor, FrontDoorConfig
        ):
            raise ConfigError(
                "frontdoor must be None or a FrontDoorConfig, got "
                f"{type(self.frontdoor).__name__}"
            )
        if self.telemetry is not None and not isinstance(
            self.telemetry, TelemetryConfig
        ):
            raise ConfigError(
                "telemetry must be None or a TelemetryConfig, got "
                f"{type(self.telemetry).__name__}"
            )
        if self.durability is not None and not isinstance(
            self.durability, DurabilityConfig
        ):
            raise ConfigError(
                "durability must be None or a DurabilityConfig, got "
                f"{type(self.durability).__name__}"
            )
        if (
            self.precision_plan is not None
            and self.precision != "auto"
        ):
            raise ConfigError(
                "precision_plan is only consumed with precision='auto' "
                f"(got precision={self.precision!r})"
            )

    # -------------------------------------------------------------- #
    # Derived views
    # -------------------------------------------------------------- #

    def simrank_config(self) -> SimRankConfig:
        """The algorithm half (damping, iterations) as a SimRankConfig."""
        return SimRankConfig(
            damping=self.damping, iterations=self.iterations
        )

    def with_overrides(self, **overrides) -> "ServiceConfig":
        """A copy with the given fields replaced (validated again)."""
        return replace(self, **overrides)

    # -------------------------------------------------------------- #
    # JSON round trip
    # -------------------------------------------------------------- #

    def to_dict(self) -> dict:
        """JSON-safe payload (the exact :meth:`from_dict` input).

        A live :class:`~repro.tuning.precision.PrecisionPlan` in
        ``precision_plan`` is flattened to its ``to_dict()`` payload so
        the round trip stays self-contained.
        """
        payload = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if (
                spec.name in ("frontdoor", "telemetry", "durability")
                and value is not None
            ):
                value = value.to_dict()
            elif spec.name == "precision_plan" and value is not None:
                to_dict = getattr(value, "to_dict", None)
                if callable(to_dict):
                    value = to_dict()
            payload[spec.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ServiceConfig":
        """Rebuild from :meth:`to_dict`; unknown keys are an error."""
        if not isinstance(payload, dict):
            raise ConfigError(
                f"service config must be a dict, got "
                f"{type(payload).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(
                f"unknown service config keys: {sorted(unknown)}"
            )
        data = dict(payload)
        if isinstance(data.get("frontdoor"), dict):
            data["frontdoor"] = FrontDoorConfig.from_dict(data["frontdoor"])
        if isinstance(data.get("telemetry"), dict):
            data["telemetry"] = TelemetryConfig.from_dict(data["telemetry"])
        if isinstance(data.get("durability"), dict):
            data["durability"] = DurabilityConfig.from_dict(
                data["durability"]
            )
        return cls(**data)

    def save(self, path: str) -> None:
        """Serialize to a JSON config file (``serve --config`` input)."""
        try:
            text = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        except TypeError as exc:
            raise ConfigError(
                f"service config is not JSON-serializable: {exc}"
            ) from None
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")

    @classmethod
    def load(cls, path: str) -> "ServiceConfig":
        """Load a config saved by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ConfigError(
                    f"invalid JSON in service config {path!r}: {exc}"
                ) from None
        return cls.from_dict(payload)


def resolve_service_config(config, overrides: dict) -> ServiceConfig:
    """Coerce the service's ``config`` argument + legacy kwargs to one
    validated :class:`ServiceConfig`.

    ``config`` may be ``None``, a :class:`~repro.config.SimRankConfig`
    (the historical second positional argument), a
    :class:`ServiceConfig`, its ``to_dict()`` payload, or a path to a
    saved config file.  ``overrides`` holds only the legacy keyword
    arguments the caller passed *explicitly*.

    The compatibility contract: legacy kwargs on top of ``None`` or a
    ``SimRankConfig`` simply build the config; on top of an explicit
    :class:`ServiceConfig` they must agree with it — any explicitly
    passed kwarg whose value differs from the config's field raises
    :class:`~repro.exceptions.ConfigError` rather than silently
    preferring one side.
    """
    if isinstance(config, str):
        config = ServiceConfig.load(config)
    elif isinstance(config, dict):
        config = ServiceConfig.from_dict(config)
    if isinstance(config, ServiceConfig):
        conflicts = {
            name: (getattr(config, name), value)
            for name, value in overrides.items()
            if getattr(config, name) != value
        }
        if conflicts:
            detail = ", ".join(
                f"{name}: config={have!r} kwarg={want!r}"
                for name, (have, want) in sorted(conflicts.items())
            )
            raise ConfigError(
                f"explicit ServiceConfig conflicts with keyword "
                f"arguments ({detail}); drop the kwargs or change the "
                f"config"
            )
        return config
    if isinstance(config, SimRankConfig):
        overrides = dict(overrides)
        overrides.setdefault("damping", config.damping)
        overrides.setdefault("iterations", config.iterations)
    elif config is not None:
        raise ConfigError(
            "config must be a ServiceConfig, a SimRankConfig, a dict, a "
            f"path, or None, got {type(config).__name__}"
        )
    return ServiceConfig(**overrides)
