"""The write-side update queue with same-target coalescing.

Under heavy update traffic many edge changes hit the same target node
(a paper accumulating citations, a video whose related-list is
rewritten).  Theorem 1 generalizes: *any* set of changes to one ``Q``
row is still rank-one, so a drain that groups pending updates by target
costs one pruned kernel run per distinct row instead of one per edge —
the engine's consolidated path.  The scheduler does the queue-side half
of that bargain:

* **cancellation** — an insert annihilates a pending delete of the same
  edge (and vice versa), so churn never reaches the kernel at all;
* **coalescing** — surviving updates are emitted grouped by target
  (removals before insertions within a group), which is exactly the
  shape :func:`repro.incremental.row_update.consolidate_batch` turns
  into composite row updates.

The scheduler is graph-agnostic and implements **net semantics**: only
the updates that survive cancellation are validated (by the engine, at
apply time).  A cancelled pair is never checked against the graph — an
invalid insert followed by its delete coalesces to a no-op rather than
raising the ``EdgeExistsError`` sequential application would have
produced.  Callers that need per-update validation should apply updates
through the engine directly instead of queueing them.  FIFO target
order is preserved (groups are emitted in first-touched order), which
keeps drains deterministic for the equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from ..graph.updates import EdgeUpdate, UpdateBatch


@dataclass
class SchedulerStats:
    """Lifetime counters of one :class:`UpdateScheduler`."""

    submitted: int = 0
    cancelled_pairs: int = 0
    drained_updates: int = 0
    drained_batches: int = 0
    drained_groups: int = 0
    #: Largest row-group count any single drain produced — on the
    #: process executor this is the largest plan batch one wire command
    #: carried, so the batching win is visible from the queue side too.
    max_drained_groups: int = 0

    def coalescing_ratio(self) -> float:
        """Mean updates represented per drained row group (≥ 1.0)."""
        if self.drained_groups == 0:
            return 1.0
        return self.drained_updates / self.drained_groups


@dataclass
class _TargetGroup:
    """Pending net changes to one target's in-neighbor set."""

    added: Dict[int, None] = field(default_factory=dict)  # ordered set
    removed: Dict[int, None] = field(default_factory=dict)


class UpdateScheduler:
    """FIFO edge-update queue that coalesces per target at drain time."""

    def __init__(self) -> None:
        self._groups: Dict[int, _TargetGroup] = {}
        self._pending = 0
        #: Targets whose group currently holds a net change — maintained
        #: incrementally so every target-level question is O(1): the
        #: backpressure fast path (:meth:`has_pending_target`), the
        #: :attr:`pending_targets` gauge (previously an O(#targets)
        #: scan per metrics read), and the cluster pool's dispatcher,
        #: which reads :attr:`active_targets` to size drain batches
        #: without re-walking the queue.
        self._active: set = set()
        self.stats = SchedulerStats()

    def __len__(self) -> int:
        """Net updates currently pending (after cancellation).

        Maintained as a counter so the background writer's bounded-queue
        check is O(1) per submit rather than O(#targets).
        """
        return self._pending

    @property
    def pending_targets(self) -> int:
        """Distinct target rows the pending updates will touch (O(1))."""
        return len(self._active)

    @property
    def active_targets(self) -> frozenset:
        """The distinct pending target rows (a frozen O(1)-maintained view).

        One drained row group is produced per member, so consumers —
        the cluster dispatcher sizing a drain, metrics, tests — read
        this instead of scanning the queue.
        """
        return frozenset(self._active)

    def submit(self, update: EdgeUpdate) -> None:
        """Enqueue one edge update, cancelling against pending inverses."""
        self.stats.submitted += 1
        group = self._groups.setdefault(update.target, _TargetGroup())
        if update.is_insert:
            if update.source in group.removed:
                del group.removed[update.source]
                self.stats.cancelled_pairs += 1
                self._pending -= 1
            elif update.source not in group.added:
                # Duplicate same-direction submits are no-ops for the
                # net queue — the counter must not drift above it.
                group.added[update.source] = None
                self._pending += 1
        else:
            if update.source in group.added:
                del group.added[update.source]
                self.stats.cancelled_pairs += 1
                self._pending -= 1
            elif update.source not in group.removed:
                group.removed[update.source] = None
                self._pending += 1
        if group.added or group.removed:
            self._active.add(update.target)
        else:
            self._active.discard(update.target)

    def has_pending_target(self, target: int) -> bool:
        """Whether any net change to ``target``'s row is queued (O(1)).

        Used by the ``drop-coalesce`` backpressure policy: an update
        whose target already has a pending row group coalesces into it
        (or cancels a queued inverse) without adding a new kernel run,
        so it is accepted even when the queue is at capacity.
        """
        return target in self._active

    def pending_effect(self, source: int, target: int) -> "bool | None":
        """The queued net effect on edge ``(source, target)``, if any.

        Returns True when an insert is pending, False when a delete is
        pending, and None when the queue holds no net change for the
        edge.  The front door's update admission uses this to validate
        an incoming update against *graph ∪ queue* — an insert that is
        a duplicate only because an identical insert is already queued
        must be rejected up front, or the eventual drain would fail the
        whole batch (a poison batch pausing the background writer).
        """
        group = self._groups.get(target)
        if group is None:
            return None
        if source in group.added:
            return True
        if source in group.removed:
            return False
        return None

    def submit_many(self, updates: Iterable[EdgeUpdate]) -> None:
        """Enqueue a stream of updates."""
        for update in updates:
            self.submit(update)

    def drain(self) -> UpdateBatch:
        """Pop everything pending as one coalesced :class:`UpdateBatch`.

        Updates come out grouped by target (first-touched target order,
        removals before insertions within each group) — the layout the
        consolidated row-update path groups in a single pass.  Returns
        an empty batch when nothing is pending.
        """
        updates: List[EdgeUpdate] = []
        groups = 0
        for target, group in self._groups.items():
            if not group.added and not group.removed:
                continue
            groups += 1
            for source in group.removed:
                updates.append(EdgeUpdate.delete(source, target))
            for source in group.added:
                updates.append(EdgeUpdate.insert(source, target))
        self._groups.clear()
        self._active.clear()
        self._pending = 0
        self.stats.drained_updates += len(updates)
        self.stats.drained_groups += groups
        if groups > self.stats.max_drained_groups:
            self.stats.max_drained_groups = groups
        if updates:
            self.stats.drained_batches += 1
        return UpdateBatch(updates)

    def peek(self) -> List[Tuple[int, int, int]]:
        """Pending net changes as ``(target, +adds, -removes)`` triples."""
        return [
            (target, len(group.added), len(group.removed))
            for target, group in self._groups.items()
            if group.added or group.removed
        ]

    def __repr__(self) -> str:
        return (
            f"UpdateScheduler(pending={len(self)}, "
            f"targets={self.pending_targets})"
        )
