"""Tests for repro.graph.digraph."""

import pytest

from repro.exceptions import (
    EdgeExistsError,
    EdgeNotFoundError,
    GraphError,
    NodeNotFoundError,
)
from repro.graph.digraph import DynamicDiGraph


class TestConstruction:
    def test_empty_graph(self):
        graph = DynamicDiGraph(0)
        assert graph.num_nodes == 0
        assert graph.num_edges == 0
        assert list(graph.edges()) == []

    def test_negative_size_rejected(self):
        with pytest.raises(GraphError):
            DynamicDiGraph(-1)

    def test_from_edges(self):
        graph = DynamicDiGraph.from_edges(3, [(0, 1), (1, 2)])
        assert graph.num_edges == 2
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(2, 0)

    def test_from_labeled_edges(self):
        graph, labels = DynamicDiGraph.from_labeled_edges(
            [("x", "y"), ("y", "z"), ("x", "z")]
        )
        assert graph.num_nodes == 3
        assert labels == {"x": 0, "y": 1, "z": 2}
        assert graph.has_edge(labels["x"], labels["z"])

    def test_copy_is_deep(self):
        graph = DynamicDiGraph.from_edges(3, [(0, 1)])
        clone = graph.copy()
        clone.add_edge(1, 2)
        assert not graph.has_edge(1, 2)
        assert graph.num_edges == 1
        assert clone.num_edges == 2

    def test_equality(self):
        a = DynamicDiGraph.from_edges(3, [(0, 1), (1, 2)])
        b = DynamicDiGraph.from_edges(3, [(1, 2), (0, 1)])
        assert a == b
        b.add_edge(2, 0)
        assert a != b


class TestMutation:
    def test_add_and_remove_edge_roundtrip(self):
        graph = DynamicDiGraph(4)
        graph.add_edge(1, 3)
        assert graph.has_edge(1, 3)
        graph.remove_edge(1, 3)
        assert not graph.has_edge(1, 3)
        assert graph.num_edges == 0

    def test_duplicate_insert_raises(self):
        graph = DynamicDiGraph.from_edges(2, [(0, 1)])
        with pytest.raises(EdgeExistsError):
            graph.add_edge(0, 1)

    def test_missing_delete_raises(self):
        graph = DynamicDiGraph(2)
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge(0, 1)

    def test_unknown_node_raises(self):
        graph = DynamicDiGraph(2)
        with pytest.raises(NodeNotFoundError):
            graph.add_edge(0, 5)
        with pytest.raises(NodeNotFoundError):
            graph.in_degree(-1)

    def test_self_loop_allowed(self):
        graph = DynamicDiGraph(2)
        graph.add_edge(1, 1)
        assert graph.has_edge(1, 1)
        assert graph.in_degree(1) == 1
        assert graph.out_degree(1) == 1

    def test_add_node_grows_universe(self):
        graph = DynamicDiGraph(2)
        new = graph.add_node()
        assert new == 2
        assert graph.num_nodes == 3
        graph.add_edge(0, new)
        assert graph.has_edge(0, 2)


class TestQueries:
    def test_in_and_out_neighbors(self, diamond_graph):
        assert diamond_graph.in_neighbors(3) == frozenset({1, 2})
        assert diamond_graph.out_neighbors(0) == frozenset({1, 2})
        assert diamond_graph.in_neighbors(0) == frozenset()

    def test_degrees(self, diamond_graph):
        assert diamond_graph.in_degree(3) == 2
        assert diamond_graph.out_degree(0) == 2
        assert diamond_graph.in_degree(0) == 0

    def test_average_in_degree(self, diamond_graph):
        assert diamond_graph.average_in_degree() == pytest.approx(1.0)

    def test_average_in_degree_empty(self):
        assert DynamicDiGraph(0).average_in_degree() == 0.0

    def test_edges_sorted_deterministic(self):
        graph = DynamicDiGraph.from_edges(3, [(2, 1), (0, 2), (0, 1)])
        assert list(graph.edges()) == [(0, 1), (0, 2), (2, 1)]

    def test_in_neighbor_lists(self, diamond_graph):
        assert diamond_graph.in_neighbor_lists() == [[], [0], [0], [1, 2]]

    def test_contains(self, diamond_graph):
        assert 3 in diamond_graph
        assert 4 not in diamond_graph
        assert "a" not in diamond_graph

    def test_len(self, diamond_graph):
        assert len(diamond_graph) == 4


class TestNetworkxInterop:
    def test_roundtrip(self, citation_graph):
        nx_graph = citation_graph.to_networkx()
        assert nx_graph.number_of_nodes() == citation_graph.num_nodes
        assert nx_graph.number_of_edges() == citation_graph.num_edges
        back, labels = DynamicDiGraph.from_networkx(nx_graph)
        assert back == citation_graph
        assert labels == {v: v for v in range(citation_graph.num_nodes)}
