"""Tests for repro.cli (the top-level command line)."""

import numpy as np
import pytest

from repro.cli import build_parser, load_update_file, main
from repro.exceptions import GraphError
from repro.graph.io import save_edge_list


@pytest.fixture
def edges_file(tmp_path, citation_graph):
    path = str(tmp_path / "graph.txt")
    save_edge_list(citation_graph, path)
    return path


@pytest.fixture
def updates_file(tmp_path, citation_graph):
    path = tmp_path / "updates.txt"
    existing = sorted(citation_graph.edge_set())
    source, target = existing[0]
    lines = [
        "# a comment",
        f"- {source} {target}",
        "+ 0 55",
        "+ 1 55",
        "+ 2 55",  # repeated target: exercises consolidation
    ]
    path.write_text("\n".join(lines) + "\n")
    return str(path)


class TestLoadUpdateFile:
    def test_parses_signs(self, updates_file):
        batch = load_update_file(updates_file)
        assert len(batch) == 4
        assert batch.num_deletions == 1
        assert batch.num_insertions == 3

    def test_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("* 0 1\n")
        with pytest.raises(GraphError):
            load_update_file(str(path))

    def test_rejects_wrong_arity(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("+ 0\n")
        with pytest.raises(GraphError):
            load_update_file(str(path))


class TestCommands:
    def test_info(self, edges_file, capsys):
        assert main(["info", edges_file]) == 0
        out = capsys.readouterr().out
        assert "num_nodes" in out
        assert "in_degree_gini" in out

    def test_compute_with_output(self, edges_file, tmp_path, capsys):
        out_path = str(tmp_path / "scores.npy")
        code = main(
            ["--iterations", "5", "compute", edges_file, "-o", out_path, "-k", "3"]
        )
        assert code == 0
        scores = np.load(out_path)
        assert scores.shape[0] == scores.shape[1]
        assert "top-3 similar pairs" in capsys.readouterr().out

    def test_update_unit_path(self, edges_file, updates_file, capsys):
        code = main(
            ["--iterations", "5", "update", edges_file, updates_file, "-k", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "applied 4 unit updates" in out
        assert "pruned" in out

    def test_update_consolidated_path(self, edges_file, updates_file, capsys):
        code = main(
            [
                "--iterations",
                "5",
                "update",
                edges_file,
                updates_file,
                "--consolidate",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # 4 updates but at most 2 distinct target rows.
        assert "consolidated row updates" in out
        assert "as 2 consolidated" in out

    def test_consolidated_and_unit_agree(
        self, edges_file, updates_file, tmp_path, capsys
    ):
        unit_out = str(tmp_path / "unit.npy")
        cons_out = str(tmp_path / "cons.npy")
        main(["update", edges_file, updates_file, "-o", unit_out])
        main(["update", edges_file, updates_file, "--consolidate", "-o", cons_out])
        unit_scores = np.load(unit_out)
        cons_scores = np.load(cons_out)
        np.testing.assert_allclose(unit_scores, cons_scores, atol=1e-3)

    def test_similar(self, edges_file, capsys):
        assert main(["similar", edges_file, "5", "-k", "4"]) == 0
        out = capsys.readouterr().out
        assert "similar to 5" in out

    def test_serve(self, edges_file, updates_file, capsys):
        assert main(["serve", edges_file, updates_file, "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "consolidated row updates" in out
        assert "still serves the frozen version: yes" in out
        assert "fresh snapshot v1 top pairs" in out

    def test_serve_process_executor(self, edges_file, updates_file, capsys):
        assert (
            main(
                ["serve", edges_file, updates_file, "-k", "3", "--workers", "2"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "process executor" in out
        assert "shard workers" in out
        assert "still serves the frozen version: yes" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
