"""Tests for repro.graph.updates."""

import pytest

from repro.exceptions import GraphError
from repro.graph.digraph import DynamicDiGraph
from repro.graph.updates import (
    EdgeUpdate,
    UpdateBatch,
    UpdateKind,
    graph_delta,
    interleave,
)


class TestEdgeUpdate:
    def test_shorthand_constructors(self):
        insert = EdgeUpdate.insert(1, 2)
        delete = EdgeUpdate.delete(1, 2)
        assert insert.is_insert and insert.kind is UpdateKind.INSERT
        assert not delete.is_insert and delete.kind is UpdateKind.DELETE
        assert insert.edge == delete.edge == (1, 2)

    def test_inverse(self):
        update = EdgeUpdate.insert(0, 1)
        assert update.inverse() == EdgeUpdate.delete(0, 1)
        assert update.inverse().inverse() == update

    def test_apply_to(self, diamond_graph):
        EdgeUpdate.insert(3, 0).apply_to(diamond_graph)
        assert diamond_graph.has_edge(3, 0)
        EdgeUpdate.delete(3, 0).apply_to(diamond_graph)
        assert not diamond_graph.has_edge(3, 0)

    def test_str(self):
        assert str(EdgeUpdate.insert(1, 2)) == "+(1->2)"
        assert str(EdgeUpdate.delete(1, 2)) == "-(1->2)"

    def test_frozen(self):
        update = EdgeUpdate.insert(0, 1)
        with pytest.raises(AttributeError):
            update.source = 5


class TestUpdateBatch:
    def test_counts(self):
        batch = UpdateBatch(
            [EdgeUpdate.insert(0, 1), EdgeUpdate.delete(1, 2), EdgeUpdate.insert(2, 3)]
        )
        assert len(batch) == 3
        assert batch.num_insertions == 2
        assert batch.num_deletions == 1

    def test_apply_preserves_order(self):
        graph = DynamicDiGraph(3)
        # Insert then delete the same edge: order matters.
        batch = UpdateBatch([EdgeUpdate.insert(0, 1), EdgeUpdate.delete(0, 1)])
        batch.apply_to(graph)
        assert graph.num_edges == 0

    def test_applied_leaves_original_untouched(self, diamond_graph):
        batch = UpdateBatch([EdgeUpdate.insert(3, 0)])
        result = batch.applied(diamond_graph)
        assert result.has_edge(3, 0)
        assert not diamond_graph.has_edge(3, 0)

    def test_inverse_undoes(self, diamond_graph):
        batch = UpdateBatch(
            [EdgeUpdate.insert(3, 0), EdgeUpdate.delete(0, 1), EdgeUpdate.insert(1, 0)]
        )
        forward = batch.applied(diamond_graph)
        back = batch.inverse().applied(forward)
        assert back == diamond_graph

    def test_validate_against_good_batch(self, diamond_graph):
        UpdateBatch([EdgeUpdate.insert(3, 0)]).validate_against(diamond_graph)

    def test_validate_against_bad_batch(self, diamond_graph):
        with pytest.raises(GraphError):
            UpdateBatch([EdgeUpdate.insert(0, 1)]).validate_against(diamond_graph)

    def test_validate_does_not_mutate(self, diamond_graph):
        batch = UpdateBatch([EdgeUpdate.insert(3, 0)])
        batch.validate_against(diamond_graph)
        assert not diamond_graph.has_edge(3, 0)

    def test_indexing(self):
        updates = [EdgeUpdate.insert(0, 1), EdgeUpdate.delete(1, 2)]
        batch = UpdateBatch(updates)
        assert batch[0] == updates[0]
        assert batch[1] == updates[1]


class TestGraphDelta:
    def test_delta_roundtrip(self, diamond_graph):
        target = diamond_graph.copy()
        target.remove_edge(0, 1)
        target.add_edge(3, 0)
        target.add_edge(1, 0)
        batch = graph_delta(diamond_graph, target)
        assert batch.applied(diamond_graph) == target

    def test_deletions_before_insertions(self, diamond_graph):
        target = diamond_graph.copy()
        target.remove_edge(0, 1)
        target.add_edge(3, 0)
        batch = graph_delta(diamond_graph, target)
        kinds = [update.kind for update in batch]
        assert kinds == [UpdateKind.DELETE, UpdateKind.INSERT]

    def test_identical_graphs_give_empty_delta(self, diamond_graph):
        assert len(graph_delta(diamond_graph, diamond_graph.copy())) == 0

    def test_mismatched_universes_rejected(self):
        with pytest.raises(GraphError):
            graph_delta(DynamicDiGraph(2), DynamicDiGraph(3))


class TestInterleave:
    def test_round_robin(self):
        a = UpdateBatch([EdgeUpdate.insert(0, 1), EdgeUpdate.insert(0, 2)])
        b = UpdateBatch([EdgeUpdate.delete(5, 6)])
        merged = interleave([a, b])
        assert list(merged) == [
            EdgeUpdate.insert(0, 1),
            EdgeUpdate.delete(5, 6),
            EdgeUpdate.insert(0, 2),
        ]
