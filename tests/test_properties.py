"""Property-based tests (hypothesis) for the core invariants.

Strategy: generate small random digraphs and applicable update streams,
then assert the paper's structural guarantees hold on every one:

* Theorem 1 — ``ΔQ`` always factorizes as the claimed ``u·vᵀ``;
* Inc-SR ≡ Inc-uSR (lossless pruning);
* incremental ≡ batch recomputation (within iteration truncation);
* similarity-matrix invariants (symmetry, range, diagonal floor);
* update batches compose and invert correctly.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SimRankConfig
from repro.graph.digraph import DynamicDiGraph
from repro.graph.transition import (
    backward_transition_matrix,
    update_transition_matrix,
    verify_transition_matrix,
)
from repro.graph.updates import EdgeUpdate, UpdateBatch, graph_delta
from repro.incremental.inc_sr import inc_sr_update
from repro.incremental.inc_usr import inc_usr_update
from repro.incremental.rank_one import rank_one_decomposition
from repro.simrank.exact import exact_simrank, truncation_error_bound
from repro.simrank.matrix import matrix_simrank

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def small_digraphs(draw, min_nodes=3, max_nodes=12):
    """A random digraph over 3..12 nodes (self-loops excluded)."""
    n = draw(st.integers(min_nodes, max_nodes))
    pairs = [(s, t) for s in range(n) for t in range(n) if s != t]
    edges = draw(
        st.lists(st.sampled_from(pairs), unique=True, max_size=min(30, len(pairs)))
    )
    return DynamicDiGraph.from_edges(n, edges)


@st.composite
def graphs_with_update(draw):
    """A graph plus one applicable unit update (insert or delete)."""
    graph = draw(small_digraphs())
    n = graph.num_nodes
    edge_set = graph.edge_set()
    do_delete = draw(st.booleans()) and bool(edge_set)
    if do_delete:
        edge = draw(st.sampled_from(sorted(edge_set)))
        return graph, EdgeUpdate.delete(*edge)
    non_edges = [
        (s, t) for s in range(n) for t in range(n) if s != t and (s, t) not in edge_set
    ]
    if not non_edges:
        edge = draw(st.sampled_from(sorted(edge_set)))
        return graph, EdgeUpdate.delete(*edge)
    edge = draw(st.sampled_from(non_edges))
    return graph, EdgeUpdate.insert(*edge)


@SETTINGS
@given(graphs_with_update())
def test_theorem1_rank_one_factorization(case):
    """ΔQ = u·vᵀ for every applicable unit update on every graph."""
    graph, update = case
    u, v = rank_one_decomposition(graph, update)
    old_q = backward_transition_matrix(graph).toarray()
    new_graph = graph.copy()
    update.apply_to(new_graph)
    new_q = backward_transition_matrix(new_graph).toarray()
    np.testing.assert_allclose(np.outer(u, v), new_q - old_q, atol=1e-12)


@SETTINGS
@given(graphs_with_update())
def test_inc_sr_equals_inc_usr(case):
    """Pruning never changes the result (Theorem 4 losslessness)."""
    graph, update = case
    config = SimRankConfig(damping=0.6, iterations=12)
    q = backward_transition_matrix(graph)
    s_old = matrix_simrank(graph, config)
    pruned = inc_sr_update(graph, q, s_old, update, config)
    unpruned = inc_usr_update(graph, q, s_old, update, config)
    np.testing.assert_allclose(pruned.new_s, unpruned.new_s, atol=1e-11)


@SETTINGS
@given(graphs_with_update())
def test_incremental_matches_exact_fixed_point(case):
    """Inc-SR from the exact old S lands on the exact new S (within C^K)."""
    graph, update = case
    config = SimRankConfig(damping=0.6, iterations=25)
    q = backward_transition_matrix(graph)
    s_old = exact_simrank(graph, config)
    result = inc_sr_update(graph, q, s_old, update, config)
    new_graph = graph.copy()
    update.apply_to(new_graph)
    truth = exact_simrank(new_graph, config)
    np.testing.assert_allclose(
        result.new_s, truth, atol=4 * truncation_error_bound(config)
    )


@SETTINGS
@given(graphs_with_update())
def test_delta_s_symmetric(case):
    """ΔS = M + Mᵀ is symmetric by construction."""
    graph, update = case
    config = SimRankConfig(damping=0.6, iterations=10)
    q = backward_transition_matrix(graph)
    s_old = matrix_simrank(graph, config)
    result = inc_usr_update(graph, q, s_old, update, config)
    np.testing.assert_allclose(result.delta_s, result.delta_s.T, atol=1e-12)


@SETTINGS
@given(small_digraphs())
def test_similarity_matrix_invariants(graph):
    """Exact S is symmetric, in [0, 1], with diagonal >= 1 - C."""
    config = SimRankConfig(damping=0.6, iterations=15)
    s = exact_simrank(graph, config)
    np.testing.assert_allclose(s, s.T, atol=1e-10)
    assert s.min() >= -1e-10
    assert s.max() <= 1.0 + 1e-10
    assert np.min(np.diag(s)) >= (1 - config.damping) - 1e-10


@SETTINGS
@given(small_digraphs())
def test_q_row_stochasticity(graph):
    """Rows of Q sum to 1 (in-degree > 0) or 0 (no in-links)."""
    q = backward_transition_matrix(graph)
    sums = np.asarray(q.sum(axis=1)).ravel()
    for node in range(graph.num_nodes):
        expected = 1.0 if graph.in_degree(node) > 0 else 0.0
        assert abs(sums[node] - expected) < 1e-12


@SETTINGS
@given(graphs_with_update())
def test_transition_matrix_splice_consistency(case):
    """Incremental Q maintenance equals rebuilding from the graph."""
    graph, update = case
    q = backward_transition_matrix(graph)
    update.apply_to(graph)
    q_new = update_transition_matrix(q, update, graph)
    assert verify_transition_matrix(q_new, graph) is None


@SETTINGS
@given(small_digraphs(), st.integers(0, 2**31 - 1))
def test_graph_delta_roundtrip(graph, seed):
    """graph_delta(a, b) applied to a always reproduces b."""
    rng = np.random.default_rng(seed)
    other = DynamicDiGraph(graph.num_nodes)
    n = graph.num_nodes
    for source in range(n):
        for target in range(n):
            if source != target and rng.random() < 0.2:
                other.add_edge(source, target)
    batch = graph_delta(graph, other)
    assert batch.applied(graph) == other


@SETTINGS
@given(small_digraphs())
def test_update_batch_inverse_roundtrip(graph):
    """Applying a batch then its inverse restores the original graph."""
    edges = sorted(graph.edge_set())
    deletions = [EdgeUpdate.delete(*edge) for edge in edges[: len(edges) // 2]]
    n = graph.num_nodes
    insertions = [
        EdgeUpdate.insert(s, t)
        for s in range(n)
        for t in range(n)
        if s != t and not graph.has_edge(s, t)
    ][:3]
    batch = UpdateBatch(deletions + insertions)
    roundtrip = batch.inverse().applied(batch.applied(graph))
    assert roundtrip == graph


@SETTINGS
@given(graphs_with_update())
def test_update_then_inverse_restores_similarities(case):
    """Incremental +e then −e returns to the original scores."""
    graph, update = case
    config = SimRankConfig(damping=0.6, iterations=20)
    q = backward_transition_matrix(graph)
    s_old = exact_simrank(graph, config)
    forward = inc_sr_update(graph, q, s_old, update, config)
    new_graph = graph.copy()
    update.apply_to(new_graph)
    q_new = update_transition_matrix(q, update, new_graph)
    backward = inc_sr_update(
        new_graph, q_new, forward.new_s, update.inverse(), config
    )
    np.testing.assert_allclose(
        backward.new_s, s_old, atol=8 * truncation_error_bound(config)
    )
