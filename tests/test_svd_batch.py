"""Tests for repro.simrank.svd_batch (Li et al.'s low-rank batch method)."""

import numpy as np

from repro.graph.digraph import DynamicDiGraph
from repro.graph.transition import backward_transition_matrix
from repro.linalg.svd_tools import lossless_rank
from repro.simrank.exact import exact_simrank
from repro.simrank.svd_batch import svd_batch_simrank


class TestSVDBatchSimRank:
    def test_exact_when_reconstruction_lossless(self, cyclic_graph, config):
        """With the lossless SVD, the closed form equals exact SimRank.

        (The batch closed form only needs U·Σ·Vᵀ == Q; the rank-deficiency
        problem of Sec. IV is specific to the *incremental* factor update.)
        """
        scores = svd_batch_simrank(cyclic_graph, rank=None, config=config)
        truth = exact_simrank(cyclic_graph, config)
        np.testing.assert_allclose(scores, truth, atol=1e-10)

    def test_exact_on_larger_graph(self, citation_graph, config):
        scores = svd_batch_simrank(citation_graph, rank=None, config=config)
        truth = exact_simrank(citation_graph, config)
        np.testing.assert_allclose(scores, truth, atol=1e-8)

    def test_low_rank_is_approximate(self, citation_graph, config):
        truth = exact_simrank(citation_graph, config)
        approx = svd_batch_simrank(citation_graph, rank=5, config=config)
        error = np.max(np.abs(approx - truth))
        assert error > 1e-6  # visibly lossy ...
        lossless = svd_batch_simrank(citation_graph, rank=None, config=config)
        assert np.max(np.abs(lossless - truth)) < error  # ... unlike lossless

    def test_accuracy_improves_with_rank(self, citation_graph, config):
        truth = exact_simrank(citation_graph, config)
        q = backward_transition_matrix(citation_graph)
        full_rank = lossless_rank(q)
        errors = []
        for rank in (2, full_rank // 2, full_rank):
            approx = svd_batch_simrank(citation_graph, rank=rank, config=config)
            errors.append(np.max(np.abs(approx - truth)))
        assert errors[0] >= errors[-1]
        assert errors[-1] < 1e-8

    def test_symmetric_output(self, random_graph, config):
        scores = svd_batch_simrank(random_graph, rank=8, config=config)
        np.testing.assert_allclose(scores, scores.T, atol=1e-10)

    def test_empty_graph(self, config):
        scores = svd_batch_simrank(DynamicDiGraph(4), config=config)
        np.testing.assert_allclose(scores, (1 - config.damping) * np.eye(4))

    def test_diagonal_floor(self, random_graph, config):
        scores = svd_batch_simrank(random_graph, rank=None, config=config)
        assert np.min(np.diag(scores)) >= (1 - config.damping) - 1e-10
