"""Tests for repro.durability (WAL, checkpoints, recovery, time travel).

The contracts, each asserted as an *exact* equality where the design
promises one:

* **frame integrity** — every WAL frame round-trips bit-identically
  (plan index/value words compared through their int64 views);
* **damage semantics** — flipping or truncating *any* byte of the log
  yields either a bit-identical recovery of a prefix of history or a
  clean :class:`CorruptLogError` — never silent divergence (property
  test over seeded random damage);
* **crash-restart bit-identity** — a service SIGKILL'd mid-stream
  recovers bit-identical to an in-memory oracle replay, both in-process
  (simulated: no close) and as a real subprocess kill;
* **time travel** — ``top_k_at(version)`` equals a brute-force ranking
  of the oracle's score matrix at every retained version, and
  ``score_at`` matches entry-wise;
* **retention** — versions behind the oldest retained checkpoint raise
  :class:`HistoryUnavailableError`, as do future versions.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import subprocess
import sys

import numpy as np
import pytest

from repro import SimRankConfig
from repro.cluster import shm
from repro.durability import (
    KIND_ADD_NODE,
    KIND_BATCH,
    WriteAheadLog,
    decode_frames,
    encode_add_node_frame,
    encode_batch_frame,
    graph_from_packed,
    list_checkpoints,
    load_checkpoint,
    read_manifest,
    summarize_history,
    write_checkpoint,
    write_manifest,
)
from repro.durability.manager import DurabilityManager
from repro.exceptions import (
    ConfigError,
    CorruptLogError,
    HistoryUnavailableError,
)
from repro.graph.generators import erdos_renyi_digraph
from repro.graph.updates import EdgeUpdate, UpdateBatch
from repro.incremental.engine import DynamicSimRank
from repro.incremental.plan import PlanBatch
from repro.metrics.topk import top_k_pairs
from repro.serving import DurabilityConfig, ServiceConfig, SimRankService
from repro.simrank.matrix import matrix_simrank

CFG = SimRankConfig(damping=0.6, iterations=7)


def _update_stream(graph, num_batches, per_batch, seed):
    """Seeded mixed insert/delete batches valid against ``graph``."""
    edges = set(graph.edges())
    n = graph.num_nodes
    rng = random.Random(seed)
    batches = []
    for _ in range(num_batches):
        batch = []
        seen = set()
        while len(batch) < per_batch:
            a, b = rng.randrange(n), rng.randrange(n)
            if a == b or (a, b) in seen:
                continue
            seen.add((a, b))
            if (a, b) in edges:
                batch.append(EdgeUpdate.delete(a, b))
                edges.discard((a, b))
            else:
                batch.append(EdgeUpdate.insert(a, b))
                edges.add((a, b))
        batches.append(batch)
    return batches


@pytest.fixture(scope="module")
def workload():
    graph = erdos_renyi_digraph(30, 0.1, seed=17)
    scores = matrix_simrank(graph, CFG)
    return graph, scores, _update_stream(graph, 8, 4, seed=19)


def _drain_frames(workload):
    """Real (version, row_updates, packed) triples from engine drains."""
    graph, scores, batches = workload
    engine = DynamicSimRank(
        graph.copy(), CFG, algorithm="inc-sr", initial_scores=scores.copy()
    )
    triples = []
    for batch in batches:
        engine.apply_consolidated(UpdateBatch(batch))
        row_updates, plans = engine.take_last_drain()
        triples.append(
            (engine.version, row_updates, PlanBatch(list(plans)).packed())
        )
    engine.close()
    return triples


def _assert_frames_equal(got, expected):
    assert got.kind == expected.kind
    assert got.version == expected.version
    if got.kind == KIND_ADD_NODE:
        assert got.node == expected.node
        assert got.num_nodes == expected.num_nodes
        return
    assert got.row_updates == expected.row_updates
    a = np.empty(got.packed.word_count(), dtype=np.int64)
    b = np.empty(expected.packed.word_count(), dtype=np.int64)
    got.packed.write_words(a)
    expected.packed.write_words(b)
    # int64 views compare float payload words bit-exactly (NaN-proof).
    assert np.array_equal(a, b)


# ------------------------------------------------------------------ #
# WAL framing + segments
# ------------------------------------------------------------------ #


class TestWalFrames:
    def test_batch_frame_roundtrip_bit_identical(self, workload):
        triples = _drain_frames(workload)
        buffer = b"".join(
            encode_batch_frame(v, ru, packed) for v, ru, packed in triples
        )
        frames, good = decode_frames(buffer, final_segment=True)
        assert good == len(buffer)
        assert len(frames) == len(triples)
        for frame, (version, row_updates, packed) in zip(frames, triples):
            assert frame.kind == KIND_BATCH
            assert frame.version == version
            assert frame.row_updates == tuple(row_updates)
            a = np.empty(frame.packed.word_count(), dtype=np.int64)
            b = np.empty(packed.word_count(), dtype=np.int64)
            frame.packed.write_words(a)
            packed.write_words(b)
            assert np.array_equal(a, b)

    def test_add_node_frame_roundtrip(self):
        record = encode_add_node_frame(9, 40, 41)
        frames, good = decode_frames(record, final_segment=True)
        assert good == len(record)
        (frame,) = frames
        assert frame.kind == KIND_ADD_NODE
        assert (frame.version, frame.node, frame.num_nodes) == (9, 40, 41)

    def test_append_reopen_resumes(self, workload, tmp_path):
        triples = _drain_frames(workload)
        wal = WriteAheadLog(str(tmp_path), fsync="off")
        wal.open_for_append(0)
        for version, ru, packed in triples[:4]:
            wal.append(encode_batch_frame(version, ru, packed), version)
        wal.close()
        wal = WriteAheadLog(str(tmp_path), fsync="off")
        assert [f.version for f in wal.frames()] == [1, 2, 3, 4]
        wal.open_for_append(4)
        for version, ru, packed in triples[4:]:
            wal.append(encode_batch_frame(version, ru, packed), version)
        assert [f.version for f in wal.frames()] == list(range(1, 9))
        assert [f.version for f in wal.frames(after_version=5)] == [6, 7, 8]
        assert [
            f.version for f in wal.frames(through_version=3)
        ] == [1, 2, 3]
        wal.close()

    def test_rotation_and_prune(self, workload, tmp_path):
        triples = _drain_frames(workload)
        wal = WriteAheadLog(str(tmp_path), fsync="off", rotate_bytes=1)
        wal.open_for_append(0)
        for version, ru, packed in triples:
            wal.append(encode_batch_frame(version, ru, packed), version - 1)
        # rotate_bytes=1 forces one frame per segment (after the first).
        assert len(wal.segments) == len(triples)
        assert [f.version for f in wal.frames()] == list(range(1, 9))
        removed = wal.prune(keep_after_version=5)
        assert removed > 0
        survivors = [f.version for f in wal.frames()]
        # Everything a replay from v5 could need must survive.
        assert set(range(6, 9)) <= set(survivors)
        assert wal.total_bytes() > 0
        wal.close()

    def test_torn_tail_truncated_on_open(self, workload, tmp_path):
        triples = _drain_frames(workload)
        wal = WriteAheadLog(str(tmp_path), fsync="off")
        wal.open_for_append(0)
        for version, ru, packed in triples:
            wal.append(encode_batch_frame(version, ru, packed), version)
        wal.close()
        (path,) = [
            os.path.join(tmp_path, n)
            for n in os.listdir(tmp_path)
            if n.endswith(".log")
        ]
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 11)  # mid-frame: torn tail
        wal = WriteAheadLog(str(tmp_path), fsync="off")
        versions = [f.version for f in wal.frames()]
        assert versions == list(range(1, 8))  # last frame dropped cleanly
        assert os.path.getsize(path) < size - 11
        wal.close()


class TestCorruptionProperties:
    """Seeded random damage: recovery or clean error, never divergence."""

    def _pristine(self, workload):
        triples = _drain_frames(workload)
        buffer = b"".join(
            encode_batch_frame(v, ru, packed) for v, ru, packed in triples
        )
        frames, good = decode_frames(buffer, final_segment=True)
        assert good == len(buffer)
        return buffer, frames

    def test_truncation_anywhere_recovers_a_clean_prefix(self, workload):
        buffer, frames = self._pristine(workload)
        rng = random.Random(31)
        for _ in range(25):
            cut = rng.randrange(len(buffer) + 1)
            got, good = decode_frames(buffer[:cut], final_segment=True)
            assert good <= cut
            # Bit-identical prefix of the original history, nothing more.
            assert len(got) <= len(frames)
            for g, e in zip(got, frames):
                _assert_frames_equal(g, e)

    def test_flip_anywhere_errors_or_recovers_prefix(self, workload):
        buffer, frames = self._pristine(workload)
        rng = random.Random(37)
        outcomes = {"prefix": 0, "corrupt": 0}
        for _ in range(40):
            at = rng.randrange(len(buffer))
            flipped = bytearray(buffer)
            flipped[at] ^= 1 << rng.randrange(8)
            try:
                got, _good = decode_frames(
                    bytes(flipped), final_segment=True
                )
            except CorruptLogError:
                outcomes["corrupt"] += 1
                continue
            outcomes["prefix"] += 1
            assert len(got) < len(frames)  # the damaged frame must drop
            for g, e in zip(got, frames):
                _assert_frames_equal(g, e)
        # A flip before the final frame always leaves valid frames after
        # the damage, so both outcomes must actually occur.
        assert outcomes["corrupt"] > 0
        assert outcomes["prefix"] > 0

    def test_mid_log_damage_is_not_silently_skipped(self, workload):
        buffer, frames = self._pristine(workload)
        # Zero out the CRC of the *first* frame: frames after it are
        # intact, so this must be a hard error, not a silent skip.
        damaged = bytearray(buffer)
        damaged[8] ^= 0xFF
        with pytest.raises(CorruptLogError):
            decode_frames(bytes(damaged), final_segment=True)

    def test_manager_recovery_after_tail_damage(self, workload, tmp_path):
        """End-to-end: damage the WAL tail, recover, match the oracle."""
        graph, scores, batches = workload
        config = DurabilityConfig(
            data_dir=str(tmp_path), fsync="off", checkpoint_interval=100
        )
        service = SimRankService(
            graph.copy(), CFG, initial_scores=scores.copy(),
            durability=config,
        )
        oracle = {}
        for batch in batches:
            service.submit_many(batch)
            service.drain()
            oracle[service.version] = service.engine.similarities().copy()
        service.close()
        wal_dir = os.path.join(tmp_path, "wal")
        (path,) = sorted(
            os.path.join(wal_dir, n)
            for n in os.listdir(wal_dir)
            if n.endswith(".log")
        )
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 3)
        manager = DurabilityManager(config)
        try:
            recovered = manager.recover()
        finally:
            manager.close()
        # One torn frame: recovery lands exactly one version earlier.
        assert recovered.version == len(batches) - 1
        assert np.array_equal(recovered.scores, oracle[recovered.version])


# ------------------------------------------------------------------ #
# Checkpoints
# ------------------------------------------------------------------ #


class TestCheckpoints:
    def _engine(self, workload, **kwargs):
        graph, scores, _ = workload
        return DynamicSimRank(
            graph.copy(),
            CFG,
            algorithm="inc-sr",
            initial_scores=scores.copy(),
            **kwargs,
        )

    def test_roundtrip_dtype_exact(self, workload, tmp_path):
        engine = self._engine(workload, score_dtype="float32", shard_rows=8)
        path = write_checkpoint(
            str(tmp_path),
            version=0,
            score_store=engine.score_store,
            transition_store=engine.transition_store,
            damping=CFG.damping,
            iterations=CFG.iterations,
        )
        data = load_checkpoint(path)
        assert data.version == 0
        assert data.meta["shard_dtypes"] == ["float32"] * len(data.shards)
        assert all(block.dtype == np.float32 for block in data.shards)
        dense = np.vstack(data.shards)
        assert np.array_equal(
            dense.astype(np.float64),
            engine.score_store.to_array(),
        )
        graph = graph_from_packed(data.packed_q)
        assert set(graph.edges()) == set(engine.graph.edges())
        engine.close()

    def test_publication_is_atomic(self, workload, tmp_path):
        engine = self._engine(workload)
        write_checkpoint(
            str(tmp_path),
            version=3,
            score_store=engine.score_store,
            transition_store=engine.transition_store,
            damping=CFG.damping,
            iterations=CFG.iterations,
        )
        root = os.path.join(tmp_path, "checkpoints")
        entries = os.listdir(root)
        # No scratch dir survives a successful publish.
        assert all(not e.startswith("tmp-") for e in entries)
        assert [v for v, _path in list_checkpoints(str(tmp_path))] == [3]
        write_manifest(str(tmp_path), [3])
        assert read_manifest(str(tmp_path))["latest"] == 3
        engine.close()

    def test_manifest_corruption_is_loud(self, tmp_path):
        assert read_manifest(str(tmp_path)) is None
        with open(
            os.path.join(tmp_path, "MANIFEST"), "w", encoding="utf-8"
        ) as handle:
            handle.write("{not json")
        with pytest.raises(CorruptLogError):
            read_manifest(str(tmp_path))

    def test_svd_history_reconstructs_interval_delta(self, workload):
        graph, scores, batches = workload
        engine = DynamicSimRank(
            graph.copy(), CFG, algorithm="inc-sr",
            initial_scores=scores.copy(),
        )
        before = engine.similarities().copy()
        packed_batches = []
        for batch in batches[:3]:
            engine.apply_consolidated(UpdateBatch(batch))
            _ru, plans = engine.take_last_drain()
            packed_batches.append(PlanBatch(list(plans)).packed())
        after = engine.similarities().copy()
        n = graph.num_nodes
        history = summarize_history(
            packed_batches, n, max_rank=64, threshold=1e-13
        )
        assert history is not None
        assert history["left"].shape[1] == history["rank"]
        assert history["rank"] <= min(64, history["raw_rank"])
        delta = np.zeros((n, n))
        support = history["support"]
        delta[np.ix_(support, support)] = history["left"] @ history["right"]
        # The factored interval delta IS the score movement (plans are
        # exact); truncation at 1e-13 keeps it to numerical noise.
        assert np.allclose(delta, after - before, atol=1e-9)
        engine.close()


# ------------------------------------------------------------------ #
# Config surface
# ------------------------------------------------------------------ #


class TestDurabilityConfig:
    def test_roundtrip_and_nesting(self):
        config = DurabilityConfig(
            data_dir="/tmp/x", fsync="always", checkpoint_interval=7
        )
        assert DurabilityConfig.from_dict(config.to_dict()) == config
        service_config = ServiceConfig(durability=config)
        resolved = ServiceConfig.from_dict(service_config.to_dict())
        assert resolved.durability == config

    def test_validation(self):
        with pytest.raises(ConfigError):
            DurabilityConfig(data_dir="")
        with pytest.raises(ConfigError):
            DurabilityConfig(data_dir="/tmp/x", fsync="sometimes")
        with pytest.raises(ConfigError):
            DurabilityConfig(data_dir="/tmp/x", checkpoint_interval=0)
        with pytest.raises(ConfigError):
            DurabilityConfig.from_dict({"data_dir": "/tmp/x", "nope": 1})

    def test_service_kwarg_coercion(self, workload, tmp_path):
        graph, scores, _ = workload
        service = SimRankService(
            graph.copy(), CFG, initial_scores=scores.copy(),
            durability=str(tmp_path),
        )
        assert service.durability is not None
        assert service.durability.config.data_dir == str(tmp_path)
        service.close()
        with pytest.raises(ConfigError):
            SimRankService(graph.copy(), CFG, durability=42)


# ------------------------------------------------------------------ #
# Service recovery + time travel
# ------------------------------------------------------------------ #


class TestServiceDurability:
    def _run(self, workload, tmp_path, **service_kwargs):
        graph, scores, batches = workload
        config = DurabilityConfig(
            data_dir=str(tmp_path),
            fsync="off",
            checkpoint_interval=3,
            retain_checkpoints=2,
        )
        service = SimRankService(
            graph.copy(), CFG, initial_scores=scores.copy(),
            durability=config, **service_kwargs,
        )
        oracle = {}
        for batch in batches:
            service.submit_many(batch)
            service.flush()
            oracle[service.version] = service.engine.similarities().copy()
        return service, config, oracle

    def test_restart_bit_identical_without_close(self, workload, tmp_path):
        """Recovery from the WAL alone — as if the writer was SIGKILL'd."""
        service, config, oracle = self._run(workload, tmp_path)
        final = service.version
        # Simulate a crash: release only the lock, skip every shutdown
        # flush (fsync=off means nothing was forced to disk anyway).
        service.durability.close()
        service._durability = None
        service.close()
        restarted = SimRankService(
            erdos_renyi_digraph(2, 0.5, seed=1), durability=config
        )
        assert restarted.version == final
        assert np.array_equal(
            restarted.engine.similarities(), oracle[final]
        )
        assert restarted.durability.durable_version == final
        restarted.close()

    def test_background_writer_and_add_node_recover(
        self, workload, tmp_path
    ):
        service, config, oracle = self._run(
            workload, tmp_path, writer="background"
        )
        node = service.add_node()
        final, nodes = service.version, service.num_nodes
        expected = service.engine.similarities().copy()
        service.close()
        restarted = SimRankService(
            erdos_renyi_digraph(2, 0.5, seed=1), durability=config
        )
        assert (restarted.version, restarted.num_nodes) == (final, nodes)
        assert np.array_equal(restarted.engine.similarities(), expected)
        assert restarted.similarity(node, node) == pytest.approx(
            1.0 - CFG.damping
        )
        restarted.close()

    def test_float32_store_recovers_bit_identical(self, workload, tmp_path):
        service, config, oracle = self._run(
            workload, tmp_path, precision="float32"
        )
        final = service.version
        expected = service.engine.similarities().copy()
        service.close()
        restarted = SimRankService(
            erdos_renyi_digraph(2, 0.5, seed=1),
            precision="float32",
            durability=config,
        )
        assert restarted.engine.score_store.dtype == np.float32
        assert np.array_equal(restarted.engine.similarities(), expected)
        assert restarted.version == final
        restarted.close()

    def test_time_travel_matches_brute_force(self, workload, tmp_path):
        service, config, oracle = self._run(workload, tmp_path)
        live = service.version
        horizon = min(service.durability.retained_versions())
        answered = 0
        for version, reference in oracle.items():
            if version < horizon:
                with pytest.raises(HistoryUnavailableError):
                    service.view_at(version)
                continue
            answered += 1
            got = service.top_k_at(10, version)
            assert got == top_k_pairs(reference, 10)
            a, b, _score = got[0]
            assert service.score_at(a, b, version) == reference[a, b]
        assert answered >= 2  # retention must leave real history
        # Live version served directly; the future is a clean 404-class.
        assert service.top_k_at(10, live) == top_k_pairs(oracle[live], 10)
        with pytest.raises(HistoryUnavailableError):
            service.view_at(live + 1)
        service.close()

    def test_time_travel_survives_restart(self, workload, tmp_path):
        service, config, oracle = self._run(workload, tmp_path)
        service.close()
        restarted = SimRankService(
            erdos_renyi_digraph(2, 0.5, seed=1), durability=config
        )
        horizon = min(restarted.durability.retained_versions())
        for version, reference in oracle.items():
            if version < horizon:
                continue
            assert restarted.top_k_at(10, version) == top_k_pairs(
                reference, 10
            )
        restarted.close()

    def test_ack_after_append_and_report(self, workload, tmp_path):
        service, config, oracle = self._run(workload, tmp_path)
        manager = service.durability
        assert manager.durable_version == service.version
        report = service.metrics_report()["durability"]
        assert report["enabled"] is True
        assert report["failed"] is False
        assert report["durable_version"] == service.version
        assert report["wal_appends"] == len(oracle)
        assert report["wal_bytes"] > 0
        assert report["last_checkpoint_version"] is not None
        assert len(report["retained_checkpoints"]) <= 2
        registry_text_counters = {
            "repro_wal_appends_total",
            "repro_wal_bytes_total",
            "repro_checkpoints_total",
        }
        names = {
            metric.name for metric in service.telemetry.registry.collect()
        }
        assert registry_text_counters <= names
        # Flight-recorder context pins where the on-disk history ends.
        context = service.telemetry.flight.context()
        assert context["durable_version"] == service.version
        assert context["wal_offset"] >= 0
        service.close()

    def test_wal_append_failure_degrades_to_ram_only(
        self, workload, tmp_path
    ):
        service, config, oracle = self._run(workload, tmp_path)
        manager = service.durability

        def boom(record, last_version):
            raise OSError("disk gone")

        manager._wal.append = boom
        graph, _scores, _batches = workload
        before = service.version
        service.submit(EdgeUpdate.insert(0, graph.num_nodes - 1))
        service.drain()  # serving must continue RAM-only
        assert service.version == before + 1
        assert manager.failed is True
        report = service.metrics_report()["durability"]
        assert report["failed"] is True
        assert "wal_append" in report["failed_reason"]
        assert manager.durable_version == before
        service.close()

    def test_data_dir_lock_is_exclusive(self, workload, tmp_path):
        service, config, _oracle = self._run(workload, tmp_path)
        with pytest.raises(ConfigError):
            DurabilityManager(config)
        service.close()
        # Released on close: a successor may take over the dir.
        manager = DurabilityManager(config)
        manager.close()


# ------------------------------------------------------------------ #
# Crash-restart (real SIGKILL subprocess)
# ------------------------------------------------------------------ #


class TestCrashRestart:
    def test_sigkill_subprocess_recovers_bit_identical(self, tmp_path):
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.durability.crash_smoke",
                "--data-dir",
                str(tmp_path / "data"),
                "--seed",
                "13",
                "--rounds",
                "1",
            ],
            capture_output=True,
            text=True,
            timeout=300,
            env={
                **os.environ,
                "PYTHONPATH": os.pathsep.join(
                    filter(None, [
                        os.path.join(os.path.dirname(__file__), "..", "src"),
                        os.environ.get("PYTHONPATH", ""),
                    ])
                ),
            },
        )
        assert result.returncode == 0, result.stderr + result.stdout
        assert "bit-identical" in result.stdout


# ------------------------------------------------------------------ #
# Reaper integration
# ------------------------------------------------------------------ #


class TestReaper:
    def test_stale_lock_and_scratch_reclaimed(self, tmp_path):
        data_dir = str(tmp_path / "data")
        os.makedirs(os.path.join(data_dir, "checkpoints", "tmp-999-4"))
        with open(
            os.path.join(data_dir, "checkpoints", "tmp-999-4", "x.npz"),
            "wb",
        ) as handle:
            handle.write(b"junk")
        with open(
            os.path.join(data_dir, "wal.lock"), "w", encoding="utf-8"
        ) as handle:
            handle.write("999999999")  # dead pid
        removed = shm._sweep_durability(data_dir, 999999999)
        assert removed == 2
        assert not os.path.exists(os.path.join(data_dir, "wal.lock"))
        assert os.listdir(os.path.join(data_dir, "checkpoints")) == []

    def test_live_lock_survives_sweep(self, tmp_path):
        data_dir = str(tmp_path / "data")
        os.makedirs(data_dir)
        with open(
            os.path.join(data_dir, "wal.lock"), "w", encoding="utf-8"
        ) as handle:
            handle.write(str(os.getpid()))  # us: definitely alive
        assert shm._sweep_durability(data_dir, 999999999) == 0
        assert os.path.exists(os.path.join(data_dir, "wal.lock"))

    def test_reap_orphans_handles_durability_manifests(self, tmp_path):
        data_dir = str(tmp_path / "data")
        os.makedirs(data_dir)
        with open(
            os.path.join(data_dir, "wal.lock"), "w", encoding="utf-8"
        ) as handle:
            handle.write("999999999")
        os.makedirs(shm.MANIFEST_DIR, exist_ok=True)
        manifest = os.path.join(
            shm.MANIFEST_DIR, "durabilitytest-reap.json"
        )
        with open(manifest, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "pid": 999999999,
                    "kind": "durability",
                    "data_dir": data_dir,
                },
                handle,
            )
        try:
            shm.reap_orphans()
            assert not os.path.exists(manifest)
            assert not os.path.exists(os.path.join(data_dir, "wal.lock"))
        finally:
            if os.path.exists(manifest):
                os.unlink(manifest)


# ------------------------------------------------------------------ #
# Front door time travel
# ------------------------------------------------------------------ #


class TestFrontDoorTimeTravel:
    def test_version_param_and_health(self, workload, tmp_path):
        from repro.frontdoor import FrontDoor, HTTPClient
        from repro.serving.config import FrontDoorConfig

        graph, scores, batches = workload
        config = DurabilityConfig(
            data_dir=str(tmp_path), fsync="off",
            checkpoint_interval=2, retain_checkpoints=3,
        )
        service = SimRankService(
            graph.copy(), CFG, initial_scores=scores.copy(),
            durability=config,
        )
        oracle = {}
        for batch in batches[:4]:
            service.submit_many(batch)
            service.drain()
            oracle[service.version] = service.engine.similarities().copy()
        target = min(service.durability.retained_versions())
        reference = oracle.get(target)

        async def body():
            door = FrontDoor(service, FrontDoorConfig())
            await door.start()
            client = HTTPClient(door.host, door.port)
            try:
                status, health = await client.request("GET", "/health")
                assert status == 200
                assert health["durability"]["failed"] is False
                assert (
                    health["durability"]["durable_version"]
                    == service.version
                )
                status, body_ = await client.request(
                    "POST",
                    f"/query?version={target}",
                    {"kind": "top_k", "k": 5},
                )
                assert status == 200
                assert body_["version"] == target
                if reference is not None:
                    expected = top_k_pairs(reference, 5)
                    got = [tuple(entry) for entry in body_["value"]]
                    assert got == [tuple(e) for e in expected]
                status, _ = await client.request(
                    "POST",
                    "/query?version=notanint",
                    {"kind": "top_k", "k": 5},
                )
                assert status == 400
                status, err = await client.request(
                    "POST",
                    f"/query?version={service.version + 99}",
                    {"kind": "top_k", "k": 5},
                )
                assert status == 404
                assert err["error"] == "HistoryUnavailableError"
            finally:
                await client.close()
                await door.stop()

        asyncio.run(body())
        service.close()
