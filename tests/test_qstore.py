"""Property tests for the dual-layout :class:`TransitionStore`.

The store is the engine's hot-path representation of ``Q``; these tests
drive it through randomized insert/delete/node-add sequences and assert
that every view it exposes (CSR, CSC, in-degree cache, matvec, column
gather) stays exactly equal to a freshly built
:func:`backward_transition_matrix` of the evolving graph.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import erdos_renyi_digraph
from repro.graph.transition import backward_transition_matrix
from repro.linalg.qstore import TransitionStore


def _assert_matches_graph(store: TransitionStore, graph: DynamicDiGraph):
    """Every store view must equal the freshly built Q of ``graph``."""
    expected = backward_transition_matrix(graph)
    n = graph.num_nodes
    assert store.shape == (n, n)
    assert store.nnz == expected.nnz
    np.testing.assert_array_equal(store.toarray(), expected.toarray())
    np.testing.assert_array_equal(
        store.csc_matrix().toarray(), expected.toarray()
    )
    np.testing.assert_array_equal(
        store.in_degrees(),
        np.asarray([graph.in_degree(v) for v in range(n)]),
    )
    # CSR/CSC caches must be canonical scipy objects.
    csr = store.csr_matrix()
    assert csr.has_sorted_indices
    assert store.csc_matrix().has_sorted_indices


def _random_walk(seed: int, steps: int, with_node_adds: bool):
    rng = np.random.default_rng(seed)
    graph = erdos_renyi_digraph(25, 0.08, seed=seed)
    store = TransitionStore.from_graph(graph)
    for _ in range(steps):
        roll = rng.random()
        if roll < 0.42 and graph.num_edges:
            source, target = list(graph.edges())[
                int(rng.integers(graph.num_edges))
            ]
            graph.remove_edge(source, target)
            store.remove_edge(source, target)
        elif roll < 0.9 or not with_node_adds:
            source = int(rng.integers(graph.num_nodes))
            target = int(rng.integers(graph.num_nodes))
            if not graph.has_edge(source, target):
                graph.add_edge(source, target)
                store.insert_edge(source, target)
        else:
            node = graph.add_node()
            assert store.add_node() == node
    return graph, store


class TestRandomizedMaintenance:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_edge_walk_matches_fresh_build(self, seed):
        graph, store = _random_walk(seed, steps=120, with_node_adds=False)
        _assert_matches_graph(store, graph)

    @pytest.mark.parametrize("seed", [4, 5])
    def test_walk_with_node_arrivals(self, seed):
        graph, store = _random_walk(seed, steps=150, with_node_adds=True)
        assert graph.num_nodes > 25  # some arrivals actually happened
        _assert_matches_graph(store, graph)

    def test_intermediate_states_stay_consistent(self):
        rng = np.random.default_rng(9)
        graph = erdos_renyi_digraph(15, 0.1, seed=9)
        store = TransitionStore.from_graph(graph)
        for step in range(60):
            source = int(rng.integers(graph.num_nodes))
            target = int(rng.integers(graph.num_nodes))
            if graph.has_edge(source, target):
                graph.remove_edge(source, target)
                store.remove_edge(source, target)
            else:
                graph.add_edge(source, target)
                store.insert_edge(source, target)
            _assert_matches_graph(store, graph)

    def test_set_row_composite_rewrite(self):
        rng = np.random.default_rng(21)
        graph = erdos_renyi_digraph(30, 0.1, seed=21)
        store = TransitionStore.from_graph(graph)
        for target in rng.integers(0, 30, size=20):
            target = int(target)
            new_sources = {
                int(s)
                for s in rng.choice(30, size=int(rng.integers(0, 9)), replace=False)
                if int(s) != target
            }
            for source in graph.in_neighbors(target):
                graph.remove_edge(source, target)
            for source in new_sources:
                graph.add_edge(source, target)
            store.set_row(target, new_sources)
            _assert_matches_graph(store, graph)

    def test_compact_preserves_content(self):
        from repro.linalg.qstore import DEFAULT_SLACK

        graph, store = _random_walk(7, steps=100, with_node_adds=False)
        store.compact()
        # Compaction restores the uniform per-segment slack policy: no
        # relocation holes survive, only DEFAULT_SLACK slots per segment.
        assert store.slack_bytes() <= 2 * DEFAULT_SLACK * graph.num_nodes * 8
        _assert_matches_graph(store, graph)


class TestHotPathReads:
    def test_matvec_matches_scipy(self):
        graph, store = _random_walk(11, steps=80, with_node_adds=False)
        expected = backward_transition_matrix(graph)
        x = np.random.default_rng(0).random(graph.num_nodes)
        # Round-off-level agreement: the slab mat-vec reduces pairwise,
        # scipy's C loop reduces sequentially, so the last bit may differ.
        np.testing.assert_allclose(store.matvec(x), expected @ x, atol=1e-14)
        np.testing.assert_allclose(store @ x, expected @ x, atol=1e-14)
        out = np.empty(graph.num_nodes)
        assert store.matvec(x, out=out) is out

    def test_matmul_matrix_operand_uses_csr(self):
        graph, store = _random_walk(12, steps=40, with_node_adds=False)
        expected = backward_transition_matrix(graph)
        dense = np.random.default_rng(1).random((graph.num_nodes, 3))
        np.testing.assert_allclose(store @ dense, expected @ dense)

    def test_gather_columns_matches_dense(self):
        graph, store = _random_walk(13, steps=80, with_node_adds=False)
        n = graph.num_nodes
        expected = backward_transition_matrix(graph)
        rng = np.random.default_rng(2)
        for support in (1, 4, n // 2, n):
            indices = np.sort(rng.choice(n, size=support, replace=False))
            values = rng.random(support)
            sparse_x = np.zeros(n)
            sparse_x[indices] = values
            rows, sums = store.gather_columns(indices, values)
            dense = np.zeros(n)
            dense[rows] = sums
            np.testing.assert_allclose(dense, expected @ sparse_x)
            assert np.all(np.diff(rows) > 0)  # sorted unique

    def test_gather_pair_equals_two_gathers(self):
        graph, store = _random_walk(14, steps=80, with_node_adds=False)
        n = graph.num_nodes
        rng = np.random.default_rng(3)
        idx_a = np.sort(rng.choice(n, size=5, replace=False))
        idx_b = np.sort(rng.choice(n, size=n // 2, replace=False))
        val_a, val_b = rng.random(5), rng.random(n // 2)
        (ra, sa), (rb, sb) = store.gather_columns_pair(idx_a, val_a, idx_b, val_b)
        ra2, sa2 = store.gather_columns(idx_a, val_a)
        rb2, sb2 = store.gather_columns(idx_b, val_b)
        np.testing.assert_array_equal(ra, ra2)
        np.testing.assert_array_equal(rb, rb2)
        np.testing.assert_array_equal(sa, sa2)
        np.testing.assert_array_equal(sb, sb2)

    def test_row_and_column_views(self):
        graph = DynamicDiGraph.from_edges(4, [(0, 2), (1, 2), (3, 2), (2, 0)])
        store = TransitionStore.from_graph(graph)
        indices, values = store.row(2)
        np.testing.assert_array_equal(indices, [0, 1, 3])
        np.testing.assert_allclose(values, [1 / 3] * 3)
        assert store.row_weight(2) == pytest.approx(1 / 3)
        rows, column_values = store.column(2)
        np.testing.assert_array_equal(rows, [0])
        np.testing.assert_allclose(column_values, [1.0])


class TestConstructionAndInterop:
    def test_from_csr_round_trip(self, random_graph):
        q_matrix = backward_transition_matrix(random_graph)
        store = TransitionStore.from_csr(q_matrix)
        np.testing.assert_array_equal(store.toarray(), q_matrix.toarray())

    def test_from_csr_rejects_non_uniform_rows(self):
        import scipy.sparse as sp

        bad = sp.csr_matrix(np.array([[0.0, 0.3], [0.7, 0.0]]))
        with pytest.raises(GraphError):
            TransitionStore.from_csr(bad)

    def test_csr_cache_reused_until_mutation(self):
        graph = DynamicDiGraph.from_edges(3, [(0, 1), (1, 2)])
        store = TransitionStore.from_graph(graph)
        first = store.csr_matrix()
        assert store.csr_matrix() is first  # cached between mutations
        version = store.version
        store.insert_edge(2, 0)
        assert store.version > version
        assert store.csr_matrix() is not first

    def test_remove_missing_edge_raises(self):
        graph = DynamicDiGraph.from_edges(3, [(0, 1)])
        store = TransitionStore.from_graph(graph)
        with pytest.raises(GraphError):
            store.remove_edge(2, 1)

    def test_empty_graph(self):
        store = TransitionStore.from_graph(DynamicDiGraph(5))
        assert store.nnz == 0
        np.testing.assert_array_equal(store.toarray(), np.zeros((5, 5)))
        x = np.ones(5)
        np.testing.assert_array_equal(store.matvec(x), np.zeros(5))

    def test_byte_accounting_positive_and_tracks_slack(self):
        graph, store = _random_walk(17, steps=60, with_node_adds=False)
        from repro.linalg.qstore import DEFAULT_SLACK

        assert store.buffer_bytes() > 0
        assert 0 <= store.slack_bytes() < store.buffer_bytes()
        store.compact()
        assert store.slack_bytes() <= 2 * DEFAULT_SLACK * graph.num_nodes * 8
