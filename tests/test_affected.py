"""Tests for repro.incremental.affected (Theorem 4 machinery)."""

import numpy as np
import pytest

from repro import SimRankConfig
from repro.graph.digraph import DynamicDiGraph
from repro.graph.transition import backward_transition_matrix
from repro.graph.updates import EdgeUpdate
from repro.incremental.affected import (
    AffectedAreaStats,
    AffectedAreaTracker,
    initial_affected_sets,
)
from repro.incremental.inc_sr import inc_sr_update
from repro.simrank.exact import exact_simrank


class TestAffectedAreaStats:
    def test_average_area(self):
        stats = AffectedAreaStats(num_nodes=10)
        stats.record(2, 3)
        stats.record(4, 5)
        assert stats.area_sizes() == [6, 20]
        assert stats.average_area() == pytest.approx(13.0)

    def test_fractions(self):
        stats = AffectedAreaStats(num_nodes=10)
        stats.record(5, 4)  # 20 of 100 pairs
        assert stats.affected_fraction() == pytest.approx(0.2)
        assert stats.pruned_fraction() == pytest.approx(0.8)

    def test_empty_stats(self):
        stats = AffectedAreaStats(num_nodes=10)
        assert stats.average_area() == 0.0
        assert stats.affected_fraction() == 0.0
        assert stats.iterations == 0

    def test_zero_nodes(self):
        stats = AffectedAreaStats(num_nodes=0)
        stats.record(0, 0)
        assert stats.affected_fraction() == 0.0

    def test_merge(self):
        a = AffectedAreaStats(num_nodes=10)
        a.record(1, 1)
        b = AffectedAreaStats(num_nodes=10)
        b.record(2, 2)
        merged = a.merged_with(b)
        assert merged.row_sizes == [1, 2]
        assert merged.average_area() == pytest.approx((1 + 4) / 2)
        # originals untouched
        assert a.row_sizes == [1]


class TestAffectedAreaTracker:
    def test_expand_is_out_neighbor_closure(self, diamond_graph):
        tracker = AffectedAreaTracker(diamond_graph)
        expanded = tracker.expand(np.asarray([0]))
        np.testing.assert_array_equal(expanded, [1, 2])
        expanded2 = tracker.expand(np.asarray([1, 2]))
        np.testing.assert_array_equal(expanded2, [3])

    def test_expand_empty(self, diamond_graph):
        tracker = AffectedAreaTracker(diamond_graph)
        assert tracker.expand(np.asarray([], dtype=np.int64)).size == 0

    def test_record(self, diamond_graph):
        tracker = AffectedAreaTracker(diamond_graph)
        tracker.record_iteration(np.asarray([0, 1]), np.asarray([2]))
        assert tracker.stats.row_sizes == [2]
        assert tracker.stats.col_sizes == [1]


class TestInitialAffectedSets:
    def test_b0_contains_target(self, diamond_graph, config):
        s = exact_simrank(diamond_graph, config)
        b0 = initial_affected_sets(
            diamond_graph, s, update_source=0, update_target=3,
            target_degree_positive=True,
        )
        assert 3 in b0

    def test_b0_superset_of_gamma_support(self, cyclic_graph):
        """Theorem 4 soundness: supp(γ) ⊆ B0 = F1 ∪ F2 ∪ {j}."""
        config = SimRankConfig(damping=0.6, iterations=15)
        q = backward_transition_matrix(cyclic_graph)
        s = exact_simrank(cyclic_graph, config)
        update = EdgeUpdate.insert(4, 2)
        from repro.incremental.gamma import compute_update_vectors

        vectors = compute_update_vectors(q, s, update, cyclic_graph, config)
        b0 = set(
            initial_affected_sets(
                cyclic_graph,
                s,
                update_source=update.source,
                update_target=update.target,
                target_degree_positive=vectors.target_degree > 0,
            ).tolist()
        )
        support = set(np.nonzero(np.abs(vectors.gamma) > 0)[0].tolist())
        assert support <= b0

    def test_theorem4_zero_outside_support(self):
        """Entries of ΔS outside the recorded affected areas are zero."""
        graph = DynamicDiGraph.from_edges(
            8, [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)]
        )
        config = SimRankConfig(damping=0.6, iterations=12)
        q = backward_transition_matrix(graph)
        s = exact_simrank(graph, config)
        result = inc_sr_update(graph, q, s, EdgeUpdate.insert(3, 0), config)
        delta = result.new_s - s
        # The second chain 4..7 is unreachable from the update: zero delta.
        assert np.max(np.abs(delta[4:, 4:])) == 0.0
        # And the affected fraction reflects that more than half is pruned.
        assert result.affected.pruned_fraction() > 0.5
