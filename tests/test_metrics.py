"""Tests for repro.metrics (topk, ndcg, error, memory)."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.metrics.error import frobenius_error, max_abs_error, mean_abs_error
from repro.metrics.memory import (
    batch_intermediate_bytes,
    format_bytes,
    inc_sr_intermediate_bytes,
    inc_svd_intermediate_bytes,
    inc_usr_intermediate_bytes,
    measure_peak_bytes,
)
from repro.metrics.ndcg import dcg, ndcg_at_k, ndcg_of_pairs
from repro.metrics.topk import pair_rank_scores, top_k_pairs


def symmetric(matrix):
    return (matrix + matrix.T) / 2


class TestTopKPairs:
    def test_basic_extraction(self):
        s = np.zeros((4, 4))
        s[0, 1] = s[1, 0] = 0.9
        s[2, 3] = s[3, 2] = 0.5
        s[0, 2] = s[2, 0] = 0.7
        top = top_k_pairs(s, 2)
        assert top == [(0, 1, 0.9), (0, 2, 0.7)]

    def test_excludes_diagonal_by_default(self):
        s = np.eye(3)
        top = top_k_pairs(s, 3)
        assert all(a != b for a, b, _ in top)

    def test_include_self(self):
        s = np.eye(3)
        top = top_k_pairs(s, 2, include_self=True)
        assert top[0] == (0, 0, 1.0)

    def test_deterministic_tie_break(self):
        s = np.zeros((4, 4))
        for a, b in [(0, 1), (0, 2), (1, 3)]:
            s[a, b] = s[b, a] = 0.5
        top = top_k_pairs(s, 3)
        assert [(a, b) for a, b, _ in top] == [(0, 1), (0, 2), (1, 3)]

    def test_k_larger_than_pairs(self):
        s = symmetric(np.random.default_rng(0).random((3, 3)))
        assert len(top_k_pairs(s, 100)) == 3  # C(3,2) pairs

    def test_k_zero(self):
        assert top_k_pairs(np.eye(3), 0) == []

    def test_rejects_non_square(self):
        with pytest.raises(DimensionError):
            top_k_pairs(np.zeros((2, 3)), 1)

    def test_pair_rank_scores(self):
        s = np.arange(9.0).reshape(3, 3)
        np.testing.assert_array_equal(
            pair_rank_scores(s, [(0, 1), (2, 2)]), [1.0, 8.0]
        )


class TestNDCG:
    def test_dcg_formula(self):
        # rel/log2(i+1) for i = 1, 2, 3.
        value = dcg([3.0, 2.0, 1.0])
        expected = 3.0 / np.log2(2) + 2.0 / np.log2(3) + 1.0 / np.log2(4)
        assert value == pytest.approx(expected)

    def test_dcg_empty(self):
        assert dcg([]) == 0.0

    def test_perfect_ranking_scores_one(self):
        rng = np.random.default_rng(1)
        s = symmetric(rng.random((8, 8)))
        assert ndcg_at_k(s, s, k=5) == pytest.approx(1.0)

    def test_identical_matrices_score_one(self, cyclic_graph, config):
        from repro.simrank.exact import exact_simrank

        s = exact_simrank(cyclic_graph, config)
        assert ndcg_at_k(s, s, k=10) == pytest.approx(1.0)

    def test_scrambled_ranking_below_one(self):
        rng = np.random.default_rng(2)
        baseline = symmetric(rng.random((10, 10)))
        scrambled = symmetric(rng.random((10, 10)))
        assert ndcg_at_k(scrambled, baseline, k=10) < 1.0

    def test_monotone_in_quality(self):
        """A mild perturbation ranks closer to truth than a wild one."""
        rng = np.random.default_rng(3)
        baseline = symmetric(rng.random((12, 12)))
        mild = baseline + 0.01 * symmetric(rng.random((12, 12)))
        wild = symmetric(rng.random((12, 12)))
        assert ndcg_at_k(mild, baseline, k=10) >= ndcg_at_k(
            wild, baseline, k=10
        )

    def test_zero_baseline_gives_one(self):
        assert ndcg_at_k(np.eye(4), np.zeros((4, 4)), k=3) == 1.0

    def test_ndcg_of_pairs_direct(self):
        baseline = np.zeros((4, 4))
        baseline[0, 1] = baseline[1, 0] = 1.0
        baseline[2, 3] = baseline[3, 2] = 0.5
        perfect = ndcg_of_pairs([(0, 1), (2, 3)], baseline, k=2)
        inverted = ndcg_of_pairs([(2, 3), (0, 1)], baseline, k=2)
        assert perfect == pytest.approx(1.0)
        assert inverted < perfect

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DimensionError):
            ndcg_at_k(np.eye(3), np.eye(4), k=2)

    def test_k_validation(self):
        with pytest.raises(DimensionError):
            ndcg_of_pairs([], np.eye(3), k=0)


class TestErrorNorms:
    def test_max_abs(self):
        a = np.asarray([[0.0, 1.0], [2.0, 3.0]])
        b = np.asarray([[0.5, 1.0], [2.0, 2.0]])
        assert max_abs_error(a, b) == pytest.approx(1.0)

    def test_mean_abs(self):
        a = np.zeros((2, 2))
        b = np.full((2, 2), 2.0)
        assert mean_abs_error(a, b) == pytest.approx(2.0)

    def test_frobenius(self):
        a = np.zeros((2, 2))
        b = np.asarray([[3.0, 0.0], [0.0, 4.0]])
        assert frobenius_error(a, b) == pytest.approx(5.0)

    def test_identical_matrices_zero(self):
        a = np.random.default_rng(0).random((5, 5))
        assert max_abs_error(a, a) == 0.0
        assert frobenius_error(a, a) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DimensionError):
            max_abs_error(np.eye(2), np.eye(3))


class TestMemoryAccounting:
    def test_estimators_positive_and_ordered(self):
        n, m, k = 1000, 7000, 15
        usr = inc_usr_intermediate_bytes(n, m, k)
        sr = inc_sr_intermediate_bytes(n, m, k, average_area=500.0, average_row_support=20.0)
        assert 0 < sr < usr  # pruning shrinks the working set

    def test_svd_quartic_in_rank(self):
        n = 1000
        r5 = inc_svd_intermediate_bytes(n, 5)
        r25 = inc_svd_intermediate_bytes(n, 25)
        # The r^4 Kronecker system should make r=25 dramatically larger.
        assert r25 > 10 * r5

    def test_batch_includes_dense_temp(self):
        assert batch_intermediate_bytes(100, 500) > 100 * 100 * 8

    def test_measure_peak_bytes(self):
        def allocate():
            return np.zeros(300_000)  # ~2.4 MB

        result, peak = measure_peak_bytes(allocate)
        assert result.shape == (300_000,)
        assert peak >= 2_000_000

    def test_format_bytes(self):
        assert format_bytes(512) == "512.0 B"
        assert format_bytes(2048) == "2.0 KB"
        assert format_bytes(3 * 1024**2) == "3.0 MB"
        assert format_bytes(5 * 1024**3) == "5.0 GB"
