"""Tests for repro.datasets (citation, video, registry, example)."""

import pytest

from repro.datasets.citation import citation_network, cith_like, dblp_like
from repro.datasets.example import (
    EXAMPLE_EDGES,
    NODE_LABELS,
    TABLE_PAIRS,
    example_graph,
    example_update,
    label_to_index,
)
from repro.datasets.registry import get_dataset, list_datasets
from repro.datasets.video import youtube_like
from repro.exceptions import ConfigError, GraphError


class TestCitationNetwork:
    def test_deterministic(self):
        a = citation_network(100, 5, 4, seed=1)
        b = citation_network(100, 5, 4, seed=1)
        assert sorted(a._edges.items()) == sorted(b._edges.items())

    def test_edges_cite_earlier_papers(self):
        corpus = citation_network(120, 6, 5, seed=2)
        for (source, target) in corpus._edges:
            assert source > target

    def test_snapshots_grow_monotonically(self):
        corpus = citation_network(150, 5, 4, seed=3)
        sizes = [corpus.snapshot_at(t).num_edges for t in corpus.timestamps()]
        assert sizes == sorted(sizes)
        assert sizes[-1] == corpus.num_edges

    def test_in_degree_skew(self):
        corpus = citation_network(300, 5, 5, seed=4)
        graph = corpus.snapshot_at(corpus.timestamps()[-1])
        degrees = sorted((graph.in_degree(v) for v in range(300)), reverse=True)
        assert degrees[0] >= 4 * max(1, degrees[150])

    def test_parameter_validation(self):
        with pytest.raises(GraphError):
            citation_network(10, 0, 3)
        with pytest.raises(GraphError):
            citation_network(2, 5, 3)
        with pytest.raises(GraphError):
            citation_network(10, 2, 0)

    def test_dblp_sparser_than_cith(self):
        dblp = dblp_like(num_papers=300, num_years=6)
        cith = cith_like(num_papers=300, num_years=6)
        dblp_density = dblp.num_edges / dblp.num_nodes
        cith_density = cith.num_edges / cith.num_nodes
        assert cith_density > dblp_density


class TestYoutubeLike:
    def test_deterministic(self):
        a = youtube_like(num_videos=150, num_ages=4, seed=5)
        b = youtube_like(num_videos=150, num_ages=4, seed=5)
        assert sorted(a._edges.items()) == sorted(b._edges.items())

    def test_contains_cycles(self):
        """Reciprocal related-links must create 2-cycles (unlike citations)."""
        corpus = youtube_like(num_videos=200, num_ages=4, seed=6)
        graph = corpus.snapshot_at(corpus.timestamps()[-1])
        has_mutual = any(
            graph.has_edge(t, s) for (s, t) in graph.edges() if s < t
        )
        assert has_mutual

    def test_snapshots_grow(self):
        corpus = youtube_like(num_videos=150, num_ages=5, seed=7)
        sizes = [corpus.snapshot_at(t).num_edges for t in corpus.timestamps()]
        assert sizes == sorted(sizes)

    def test_parameter_validation(self):
        with pytest.raises(GraphError):
            youtube_like(num_videos=2, num_ages=5)


class TestRegistry:
    def test_all_registered_datasets_build(self):
        for name in list_datasets():
            spec = get_dataset(name)
            corpus = spec.build()
            assert corpus.num_edges > 0
            assert spec.config.damping == 0.6

    def test_names_cover_three_families(self):
        names = list_datasets()
        for family in ("dblp", "cith", "youtu"):
            assert any(name.startswith(family) for name in names)

    def test_youtu_uses_k5_like_paper(self):
        assert get_dataset("youtu").config.iterations == 5
        assert get_dataset("dblp").config.iterations == 15

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            get_dataset("no-such-dataset")


class TestExampleGraph:
    def test_fifteen_nodes(self):
        graph = example_graph()
        assert graph.num_nodes == len(NODE_LABELS) == 15
        assert graph.num_edges == len(EXAMPLE_EDGES)

    def test_structural_facts_from_paper(self):
        """d_j = 2 with I(j) = {h, k}, as stated in Example 4."""
        graph = example_graph()
        mapping = label_to_index()
        j = mapping["j"]
        assert graph.in_degree(j) == 2
        assert graph.in_neighbors(j) == frozenset(
            {mapping["h"], mapping["k"]}
        )

    def test_update_is_the_dashed_insertion(self):
        graph = example_graph()
        update = example_update()
        mapping = label_to_index()
        assert update.is_insert
        assert update.edge == (mapping["i"], mapping["j"])
        assert not graph.has_edge(*update.edge)

    def test_table_pairs_valid_labels(self):
        mapping = label_to_index()
        for a, b in TABLE_PAIRS:
            assert a in mapping and b in mapping
