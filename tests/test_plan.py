"""Tests for repro.incremental.plan (the kernel layer)."""

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi_digraph
from repro.graph.updates import EdgeUpdate
from repro.incremental.inc_sr import inc_sr_update
from repro.incremental.plan import (
    UpdatePlan,
    apply_plan_dense,
    plan_unit_update,
)
from repro.incremental.row_update import (
    RowUpdate,
    apply_row_update,
    plan_composite_row_update,
)
from repro.linalg.qstore import TransitionStore
from repro.simrank.matrix import matrix_simrank


@pytest.fixture
def planned_state(config):
    graph = erdos_renyi_digraph(50, 0.06, seed=4)
    store = TransitionStore.from_graph(graph)
    scores = matrix_simrank(store.csr_matrix(), config)
    return graph, store, scores


class TestPlanShape:
    def test_plan_is_pure(self, planned_state, config):
        graph, store, scores = planned_state
        before_scores = scores.copy()
        before_version = store.version
        plan = plan_unit_update(
            store, scores, EdgeUpdate.insert(1, 20), graph, config
        )
        assert isinstance(plan, UpdatePlan)
        np.testing.assert_array_equal(scores, before_scores)
        assert store.version == before_version

    def test_factor_bookkeeping(self, planned_state, config):
        graph, store, scores = planned_state
        plan = plan_unit_update(
            store, scores, EdgeUpdate.insert(1, 20), graph, config
        )
        assert plan.target == 20
        assert plan.rank == len(plan.left_factors) == len(plan.right_factors)
        assert plan.rank >= 1
        assert plan.support_size() == plan.rows_union.size * plan.cols_union.size
        assert plan.nbytes() > 0
        # Union supports really are the union of the factor supports.
        rows = np.unique(np.concatenate([i for i, _ in plan.left_factors]))
        np.testing.assert_array_equal(rows, plan.rows_union)

    def test_panels_reconstruct_factors(self, planned_state, config):
        graph, store, scores = planned_state
        plan = plan_unit_update(
            store, scores, EdgeUpdate.insert(1, 20), graph, config
        )
        left, right = plan.panels()
        assert left.shape == (plan.rows_union.size, plan.rank)
        assert right.shape == (plan.cols_union.size, plan.rank)
        for term, (idx, val) in enumerate(plan.left_factors):
            positions = np.searchsorted(plan.rows_union, idx)
            np.testing.assert_array_equal(left[positions, term], val)


class TestPlanEquivalence:
    @pytest.mark.parametrize(
        "update",
        [EdgeUpdate.insert(1, 20), EdgeUpdate.insert(0, 3)],
    )
    def test_unit_plan_matches_inc_sr_update(
        self, planned_state, config, update
    ):
        graph, store, scores = planned_state
        plan = plan_unit_update(store, scores, update, graph, config)
        reference = inc_sr_update(graph, store, scores, update, config)
        # Applied state is bit-identical; the standalone delta only
        # differs from (S + delta) - S by subtraction round-off.
        applied = scores.copy()
        apply_plan_dense(applied, plan)
        np.testing.assert_array_equal(applied, reference.new_s)
        np.testing.assert_allclose(
            plan.delta_matrix(graph.num_nodes), reference.delta_s, atol=1e-14
        )
        assert plan.affected.iterations == reference.affected.iterations

    def test_delete_plan_matches_inc_sr_update(self, planned_state, config):
        graph, store, scores = planned_state
        update = next(
            EdgeUpdate.delete(s, t) for s, t in graph.edges()
        )
        plan = plan_unit_update(store, scores, update, graph, config)
        reference = inc_sr_update(graph, store, scores, update, config)
        applied = scores.copy()
        apply_plan_dense(applied, plan)
        np.testing.assert_array_equal(applied, reference.new_s)

    def test_row_plan_matches_apply_row_update(self, planned_state, config):
        graph, store, scores = planned_state
        target = 7
        existing = set(graph.in_neighbors(target))
        added = tuple(
            node for node in (2, 11, 23) if node not in existing and node != target
        )
        removed = tuple(sorted(existing))[:1]
        row = RowUpdate(target=target, added=added, removed=removed)
        plan = plan_composite_row_update(graph, store, scores, row, config)
        reference = apply_row_update(graph, store, scores, row, config)
        applied = scores.copy()
        apply_plan_dense(applied, plan)
        np.testing.assert_array_equal(applied, reference.new_s)

    def test_apply_plan_dense_is_symmetric(self, planned_state, config):
        graph, store, scores = planned_state
        plan = plan_unit_update(
            store, scores, EdgeUpdate.insert(1, 20), graph, config
        )
        delta = plan.delta_matrix(graph.num_nodes)
        np.testing.assert_array_equal(delta, delta.T)


class TestNoopPlan:
    def test_empty_factors_apply_to_nothing(self):
        from repro.incremental.affected import AffectedAreaStats

        plan = UpdatePlan(
            target=0,
            left_factors=[],
            right_factors=[],
            rows_union=np.zeros(0, dtype=np.int64),
            cols_union=np.zeros(0, dtype=np.int64),
            affected=AffectedAreaStats(num_nodes=4),
        )
        assert plan.is_noop
        scores = np.ones((4, 4))
        apply_plan_dense(scores, plan)
        np.testing.assert_array_equal(scores, np.ones((4, 4)))
