"""Tests for repro.linalg.paths (Lemma 1 / Corollary 1 / Eq. (34))."""

import numpy as np
import pytest

from repro import SimRankConfig
from repro.exceptions import DimensionError
from repro.graph.digraph import DynamicDiGraph
from repro.linalg.paths import (
    count_paths,
    count_symmetric_in_link_paths,
    simrank_from_paths,
    symmetric_path_weight,
    zero_weight_pairs_are_unreachable,
)
from repro.simrank.matrix import matrix_simrank


class TestLemma1:
    def test_diamond_paths(self, diamond_graph):
        # Two length-2 paths 0 -> {1,2} -> 3 (the Lemma 1 example shape).
        assert count_paths(diamond_graph, 0, 3, 2) == 2
        assert count_paths(diamond_graph, 0, 1, 1) == 1
        assert count_paths(diamond_graph, 0, 3, 1) == 0
        assert count_paths(diamond_graph, 0, 0, 0) == 1

    def test_cycle_paths(self, cyclic_graph):
        # 0 -> 1 -> 2 -> 0: one length-3 cycle back to 0.
        assert count_paths(cyclic_graph, 0, 0, 3) == 1

    def test_negative_length_rejected(self, diamond_graph):
        with pytest.raises(DimensionError):
            count_paths(diamond_graph, 0, 1, -1)


class TestCorollary1:
    def test_symmetric_in_link_count_diamond(self, diamond_graph):
        # Pair (1, 2): x = 0 reaches both in one step -> one path of 2k=2.
        assert count_symmetric_in_link_paths(diamond_graph, 1, 2, 1) == 1
        # Pair (1, 3): no common k=1 ancestor.
        assert count_symmetric_in_link_paths(diamond_graph, 1, 3, 1) == 0

    def test_weight_equals_normalized_count_on_regular_rows(self, diamond_graph):
        # Node 1 and 2 each have in-degree 1, so the weight is exactly 1.
        assert symmetric_path_weight(diamond_graph, 1, 2, 1) == pytest.approx(1.0)

    def test_zero_weight_iff_zero_count(self, random_graph):
        for k in (1, 2):
            for a, b in [(0, 1), (3, 17), (8, 30)]:
                count = count_symmetric_in_link_paths(random_graph, a, b, k)
                weight = symmetric_path_weight(random_graph, a, b, k)
                assert (count == 0) == (weight == 0.0)


class TestEq34Series:
    def test_path_series_equals_matrix_iteration(self, cyclic_graph):
        config = SimRankConfig(damping=0.6, iterations=15)
        from_paths = simrank_from_paths(cyclic_graph, config)
        from_iteration = matrix_simrank(cyclic_graph, config)
        np.testing.assert_allclose(from_paths, from_iteration, atol=1e-12)

    def test_on_random_graph(self, random_graph, config):
        np.testing.assert_allclose(
            simrank_from_paths(random_graph, config),
            matrix_simrank(random_graph, config),
            atol=1e-12,
        )


class TestTheorem4Grounding:
    def test_zero_weight_pairs_have_zero_offdiagonal_simrank(self):
        """Pairs with no symmetric in-link path at any k get score 0."""
        graph = DynamicDiGraph.from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        config = SimRankConfig(damping=0.6, iterations=10)
        scores = matrix_simrank(graph, config)
        always_zero = None
        for k in range(1, config.iterations):
            zero_pairs = set(zero_weight_pairs_are_unreachable(graph, k))
            always_zero = (
                zero_pairs if always_zero is None else always_zero & zero_pairs
            )
        for a, b in always_zero:
            assert scores[a, b] == 0.0
