"""Tests for repro.simrank.montecarlo (coalescing-walk estimation)."""

import numpy as np
import pytest

from repro import SimRankConfig
from repro.exceptions import NodeNotFoundError
from repro.simrank.montecarlo import (
    monte_carlo_simrank_pair,
    monte_carlo_simrank_source,
)
from repro.simrank.naive import naive_simrank


class TestPairEstimator:
    def test_self_pair_is_one(self, cyclic_graph, config):
        assert monte_carlo_simrank_pair(cyclic_graph, 2, 2, config) == 1.0

    def test_deterministic_for_seed(self, cyclic_graph, config):
        a = monte_carlo_simrank_pair(cyclic_graph, 1, 3, config, seed=7)
        b = monte_carlo_simrank_pair(cyclic_graph, 1, 3, config, seed=7)
        assert a == b

    def test_diamond_pair_exact_structure(self, diamond_graph):
        """s(1,2): both walk to node 0 deterministically, meeting at τ=1."""
        config = SimRankConfig(damping=0.8, iterations=10)
        estimate = monte_carlo_simrank_pair(
            diamond_graph, 1, 2, config, num_walks=50, seed=1
        )
        assert estimate == pytest.approx(0.8)  # deterministic meeting

    def test_zero_when_walks_cannot_meet(self, diamond_graph, config):
        # Node 0 has no in-links: every walk dies immediately.
        assert monte_carlo_simrank_pair(diamond_graph, 0, 3, config) == 0.0

    def test_converges_to_iterative_form(self, random_graph):
        config = SimRankConfig(damping=0.6, iterations=15)
        truth = naive_simrank(random_graph, config)
        rng = np.random.default_rng(3)
        pairs = [(1, 2), (5, 17), (8, 30)]
        for a, b in pairs:
            estimate = monte_carlo_simrank_pair(
                random_graph, a, b, config, num_walks=4000, seed=11
            )
            # 4000 walks: standard error <~ 0.008; allow 4 sigma.
            assert estimate == pytest.approx(truth[a, b], abs=0.04)

    def test_unknown_node_rejected(self, diamond_graph, config):
        with pytest.raises(NodeNotFoundError):
            monte_carlo_simrank_pair(diamond_graph, 0, 44, config)


class TestSourceEstimator:
    def test_self_score_one(self, cyclic_graph, config):
        row = monte_carlo_simrank_source(cyclic_graph, 2, config, seed=5)
        assert row[2] == 1.0

    def test_deterministic_for_seed(self, cyclic_graph, config):
        a = monte_carlo_simrank_source(cyclic_graph, 1, config, seed=9)
        b = monte_carlo_simrank_source(cyclic_graph, 1, config, seed=9)
        np.testing.assert_array_equal(a, b)

    def test_scores_in_unit_interval(self, random_graph, config):
        row = monte_carlo_simrank_source(
            random_graph, 4, config, num_walks=100, seed=2
        )
        assert row.min() >= 0.0
        assert row.max() <= 1.0

    def test_approximates_iterative_row(self, diamond_graph):
        config = SimRankConfig(damping=0.8, iterations=10)
        truth = naive_simrank(diamond_graph, config)
        row = monte_carlo_simrank_source(
            diamond_graph, 1, config, num_walks=2000, seed=13
        )
        np.testing.assert_allclose(row, truth[1], atol=0.06)
