"""Tests for repro.incremental.gamma (Theorems 2-3).

The key identity under test: with ``w = y + (λ/2)·u`` (Theorem 2), the
rank-two right-hand side ``T = u·wᵀ + w·uᵀ`` must equal the expansion
``u·(Q·S·v)ᵀ + (Q·S·v)·uᵀ + (vᵀ·S·v)·u·uᵀ`` of Eq. (23); and the folded
vector ``γ`` must satisfy ``e_j·γᵀ = u·wᵀ`` so the Theorem 3 series is
the Theorem 2 series.
"""

import numpy as np
import pytest

from repro import SimRankConfig
from repro.graph.generators import erdos_renyi_digraph
from repro.graph.transition import backward_transition_matrix
from repro.graph.updates import EdgeUpdate
from repro.incremental.gamma import compute_gamma, compute_update_vectors
from repro.simrank.exact import exact_simrank


def theorem2_w(q_dense, s_matrix, u, v):
    """The w of Theorem 2 from its defining quantities (Eq. (19))."""
    z = s_matrix @ v
    y = q_dense @ z
    lam = float(v @ z)
    return y + 0.5 * lam * u, lam


def applicable_updates(graph):
    """One insertion and one deletion covering each degree branch."""
    updates = []
    edge_set = graph.edge_set()
    n = graph.num_nodes
    # insertion with d_j = 0 and d_j > 0; deletion with d_j = 1 and > 1
    for target in range(n):
        degree = graph.in_degree(target)
        for source in range(n):
            update = EdgeUpdate.insert(source, target)
            if (source, target) not in edge_set and source != target:
                if degree == 0 and not any(
                    u.is_insert and graph.in_degree(u.target) == 0
                    for u in updates
                ):
                    updates.append(update)
                if degree > 0 and not any(
                    u.is_insert and graph.in_degree(u.target) > 0
                    for u in updates
                ):
                    updates.append(update)
    for source, target in sorted(edge_set):
        degree = graph.in_degree(target)
        if degree == 1 and not any(
            not u.is_insert and graph.in_degree(u.target) == 1 for u in updates
        ):
            updates.append(EdgeUpdate.delete(source, target))
        if degree > 1 and not any(
            not u.is_insert and graph.in_degree(u.target) > 1 for u in updates
        ):
            updates.append(EdgeUpdate.delete(source, target))
    return updates


class TestUpdateVectors:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_gamma_folds_w_exactly(self, seed):
        """γ·scaled-by-u equals the Theorem 2 w: e_j·γᵀ == u·wᵀ."""
        graph = erdos_renyi_digraph(18, 0.15, seed=seed)
        config = SimRankConfig(damping=0.7, iterations=12)
        q = backward_transition_matrix(graph)
        s = exact_simrank(graph, config)
        for update in applicable_updates(graph):
            vectors = compute_update_vectors(q, s, update, graph, config)
            w_expected, lam_expected = theorem2_w(
                q.toarray(), s, vectors.u, vectors.v
            )
            e_j = np.zeros(graph.num_nodes)
            e_j[update.target] = 1.0
            np.testing.assert_allclose(
                np.outer(e_j, vectors.gamma),
                np.outer(vectors.u, w_expected),
                atol=1e-10,
                err_msg=f"update={update}",
            )

    def test_lambda_matches_eq29(self, cyclic_graph):
        """λ = [S]ii + (1/C)[S]jj − 2[Q]j,:[S]:,i − 1/C + 1 (Eq. (29))."""
        config = SimRankConfig(damping=0.6, iterations=10)
        q = backward_transition_matrix(cyclic_graph)
        s = exact_simrank(cyclic_graph, config)
        update = EdgeUpdate.insert(4, 2)
        vectors = compute_update_vectors(q, s, update, cyclic_graph, config)
        i, j = update.source, update.target
        q_dense = q.toarray()
        expected = (
            s[i, i]
            + s[j, j] / config.damping
            - 2 * q_dense[j] @ s[:, i]
            - 1 / config.damping
            + 1
        )
        assert vectors.lam == pytest.approx(expected)

    def test_lambda_equals_vt_s_v_definition(self, cyclic_graph):
        """For the d_j>0 insertion branch, λ is vᵀ·S·v (Theorem 2 proof)."""
        config = SimRankConfig(damping=0.6, iterations=10)
        q = backward_transition_matrix(cyclic_graph)
        s = exact_simrank(cyclic_graph, config)
        update = EdgeUpdate.insert(4, 2)  # node 2 has in-degree 1 > 0
        vectors = compute_update_vectors(q, s, update, cyclic_graph, config)
        assert vectors.lam == pytest.approx(
            float(vectors.v @ s @ vectors.v), abs=1e-10
        )

    def test_rank_two_rhs_matches_eq23(self, random_graph):
        """T = u·wᵀ + w·uᵀ equals the raw expansion of Eq. (23)."""
        config = SimRankConfig(damping=0.6, iterations=10)
        q = backward_transition_matrix(random_graph)
        s = exact_simrank(random_graph, config)
        q_dense = q.toarray()
        for update in applicable_updates(random_graph)[:3]:
            vectors = compute_update_vectors(q, s, update, random_graph, config)
            u, v = vectors.u, vectors.v
            w, _ = theorem2_w(q_dense, s, u, v)
            t_folded = np.outer(u, w) + np.outer(w, u)
            qsv = q_dense @ s @ v
            t_raw = (
                np.outer(u, qsv)
                + np.outer(qsv, u)
                + float(v @ s @ v) * np.outer(u, u)
            )
            np.testing.assert_allclose(t_folded, t_raw, atol=1e-10)

    def test_shape_mismatch_rejected(self, diamond_graph):
        from repro.exceptions import DimensionError

        q = backward_transition_matrix(diamond_graph)
        with pytest.raises(DimensionError):
            compute_gamma(
                q, np.eye(3), EdgeUpdate.insert(3, 0), 0, SimRankConfig()
            )


class TestEq31And32Identities:
    def test_postmultiplication_identity(self, cyclic_graph):
        """Eq. (31): Q·S·[Q]ᵀ_{j,:} = (1/C)([S]_{:,j} − (1−C)e_j)."""
        config = SimRankConfig(damping=0.6, iterations=10)
        q = backward_transition_matrix(cyclic_graph).toarray()
        s = exact_simrank(cyclic_graph, config)
        c = config.damping
        for j in range(cyclic_graph.num_nodes):
            e_j = np.zeros(cyclic_graph.num_nodes)
            e_j[j] = 1.0
            left = q @ s @ q[j]
            right = (s[:, j] - (1 - c) * e_j) / c
            np.testing.assert_allclose(left, right, atol=1e-10)

    def test_quadratic_identity(self, cyclic_graph):
        """Eq. (32): [Q]_{j,:}·S·[Q]ᵀ_{j,:} = (1/C)([S]_{j,j} − 1) + 1."""
        config = SimRankConfig(damping=0.6, iterations=10)
        q = backward_transition_matrix(cyclic_graph).toarray()
        s = exact_simrank(cyclic_graph, config)
        c = config.damping
        for j in range(cyclic_graph.num_nodes):
            left = q[j] @ s @ q[j]
            right = (s[j, j] - 1) / c + 1
            np.testing.assert_allclose(left, right, atol=1e-10)
