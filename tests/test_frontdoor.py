"""Tests for repro.frontdoor (wire protocol, admission, sessions, subs).

The contracts the network front door adds on top of the serving layer,
each asserted as an *exact* equality:

* **batched admission equivalence** — queries answered through the
  vectorized admission path are bit-identical to solo execution;
* **pinned-session stability** — a session's answers never change
  across drains, while fresh reads see monotone versions;
* **subscription reconstruction** — a client applying pushed deltas
  holds exactly the ranking a full recompute produces, at every drain
  point, digest-verified;
* **error taxonomy** — ConfigError is a 400, a degraded pool is a 503,
  an unknown session is a 404;
* **close discipline** — service close is idempotent and
  concurrent-safe, and the front door's stop releases every pinned
  snapshot.

No pytest-asyncio here: async flows run under ``asyncio.run`` so the
suite stays dependency-free like the package it tests.
"""

from __future__ import annotations

import asyncio
import json
import threading

import numpy as np
import pytest

from repro import SimRankConfig
from repro.exceptions import (
    BackpressureError,
    ConfigError,
    ProtocolError,
    ServiceClosedError,
    SessionNotFoundError,
)
from repro.frontdoor import FrontDoor, HTTPClient, ws_connect, ws_recv_json
from repro.frontdoor.admission import execute_batch
from repro.frontdoor.protocol import websocket_accept
from repro.frontdoor.sessions import SessionManager
from repro.frontdoor.subscriptions import (
    apply_delta,
    diff_ranking,
    ranking_digest,
)
from repro.graph.generators import erdos_renyi_digraph
from repro.graph.updates import EdgeUpdate
from repro.metrics.topk import top_k_pairs
from repro.serving import (
    FrontDoorConfig,
    QueryRequest,
    ServiceConfig,
    SimRankService,
    http_status,
    resolve_service_config,
)
from repro.simrank.matrix import matrix_simrank

from _streams import random_update_stream

pytestmark = pytest.mark.usefixtures("shm_guard")

CFG = SimRankConfig(damping=0.6, iterations=7)


@pytest.fixture(scope="module")
def workload():
    graph = erdos_renyi_digraph(40, 0.08, seed=23)
    scores = matrix_simrank(graph, CFG)
    updates = random_update_stream(graph, 16, seed=29)
    return graph, scores, updates


def _service(workload, **kwargs):
    graph, scores, _ = workload
    return SimRankService(
        graph.copy(), CFG, initial_scores=scores.copy(), **kwargs
    )


async def _with_door(service, body, config=None):
    door = FrontDoor(service, config or FrontDoorConfig())
    await door.start()
    try:
        return await body(door)
    finally:
        await door.stop()


# ------------------------------------------------------------------ #
# Envelopes + config (satellite surface)
# ------------------------------------------------------------------ #


class TestEnvelopes:
    def test_request_validation(self):
        with pytest.raises(ConfigError):
            QueryRequest(kind="nope")
        with pytest.raises(ConfigError):
            QueryRequest(kind="similarity", node_a=1)  # node_b missing
        with pytest.raises(ConfigError):
            QueryRequest(kind="similarity", node_a=True, node_b=2)
        with pytest.raises(ConfigError):
            QueryRequest.from_dict(
                {"kind": "top_k", "k": 3, "bogus": 1}
            )

    def test_round_trip(self):
        request = QueryRequest(
            kind="single_source", node=4, session="abc", id="r1"
        )
        assert QueryRequest.from_dict(request.to_dict()) == request

    def test_status_taxonomy(self):
        assert http_status(ConfigError("x")) == 400
        assert http_status(BackpressureError("x")) == 429
        assert http_status(SessionNotFoundError("x")) == 404
        assert http_status(ServiceClosedError("x")) == 503
        assert http_status(ValueError("x")) == 500

    def test_batchable_kinds(self):
        assert QueryRequest(kind="similarity", node_a=0, node_b=1).batchable
        assert QueryRequest(kind="single_source", node=0).batchable
        assert not QueryRequest(kind="top_k", k=5).batchable


class TestServiceConfig:
    def test_json_round_trip(self, tmp_path):
        config = ServiceConfig(
            damping=0.7,
            writer="background",
            frontdoor=FrontDoorConfig(admission_window=0.01),
        )
        path = tmp_path / "service.json"
        config.save(path)
        assert ServiceConfig.load(path) == config

    def test_kwarg_conflict_detected(self):
        config = ServiceConfig(writer="background")
        with pytest.raises(ConfigError, match="conflicts"):
            resolve_service_config(config, {"writer": "sync"})
        # Agreeing values are not a conflict.
        resolved = resolve_service_config(config, {"writer": "background"})
        assert resolved.writer == "background"

    def test_validation(self):
        with pytest.raises(ConfigError):
            ServiceConfig(writer="turbo")
        with pytest.raises(ConfigError):
            FrontDoorConfig(admission_window=-1.0)
        with pytest.raises(ConfigError):
            FrontDoorConfig(subscription_max_k=0)


# ------------------------------------------------------------------ #
# Admission: batched == unbatched, bit-identical
# ------------------------------------------------------------------ #


class TestAdmission:
    def test_batch_matches_solo_execution(self, workload):
        service = _service(workload)
        try:
            view = service.snapshot()
            rng = np.random.default_rng(5)
            n = view.num_nodes
            requests = []
            for _ in range(12):
                if rng.random() < 0.5:
                    requests.append(
                        QueryRequest(
                            kind="similarity",
                            node_a=int(rng.integers(n)),
                            node_b=int(rng.integers(n)),
                        )
                    )
                else:
                    requests.append(
                        QueryRequest(
                            kind="single_source", node=int(rng.integers(n))
                        )
                    )
            # Duplicate one request: dedup must not change answers.
            requests.append(requests[0])
            results = execute_batch(view, requests)
            for request, result in zip(requests, results):
                if request.kind == "similarity":
                    solo = view.similarity(request.node_a, request.node_b)
                    assert result.value == solo
                else:
                    solo = view.single_source(request.node)
                    assert np.array_equal(result.value, solo)
                assert result.batched
                assert result.batch_size == len(requests)
        finally:
            service.close()

    def test_invalid_slot_fails_alone(self, workload):
        service = _service(workload)
        try:
            view = service.snapshot()
            requests = [
                QueryRequest(kind="similarity", node_a=0, node_b=1),
                QueryRequest(kind="single_source", node=10_000),
                QueryRequest(kind="single_source", node=2),
            ]
            results = execute_batch(view, requests)
            assert results[0].value == view.similarity(0, 1)
            assert isinstance(results[1], Exception)
            assert np.array_equal(results[2].value, view.single_source(2))
        finally:
            service.close()

    def test_wire_batching_is_bit_identical(self, workload):
        """Concurrent clients through the admission window get exactly
        the solo answers — while a background writer drains."""
        service = _service(workload, writer="background")
        graph, _, updates = workload

        async def body(door):
            n = graph.num_nodes
            payloads = [
                {"kind": "similarity", "node_a": i % n, "node_b": (i * 3) % n}
                for i in range(10)
            ] + [{"kind": "single_source", "node": i} for i in range(6)]

            async def one(payload):
                async with HTTPClient(door.host, door.port) as solo:
                    return await solo.request("POST", "/query", payload)

            # Quiet round: nothing queued, so every answer comes from
            # the pinned version — wire values must be bit-identical
            # to the in-process snapshot (JSON repr round-trips
            # float64 exactly).
            view = service.snapshot()
            responses = await asyncio.gather(
                *[one(payload) for payload in payloads]
            )
            batch_sizes = set()
            for payload, (status, body_json) in zip(payloads, responses):
                assert status == 200
                assert body_json["version"] == view.version
                batch_sizes.add(body_json["batch_size"])
                if payload["kind"] == "similarity":
                    expected = view.similarity(
                        payload["node_a"], payload["node_b"]
                    )
                    assert body_json["value"] == expected
                else:
                    expected = view.single_source(payload["node"])
                    assert body_json["value"] == [
                        float(x) for x in expected
                    ]
            assert max(batch_sizes) > 1  # admission actually batched

            # Live round: the same concurrent mix while the background
            # writer is draining a real update stream.
            service.submit_many(updates)
            responses = await asyncio.gather(
                *[one(payload) for payload in payloads]
            )
            service.flush()
            for status, body_json in responses:
                assert status == 200
                assert body_json["version"] >= view.version
            return True

        try:
            assert asyncio.run(_with_door(service, body))
        finally:
            service.close()


# ------------------------------------------------------------------ #
# Sessions
# ------------------------------------------------------------------ #


class TestSessions:
    def test_manager_ttl_and_limits(self, workload):
        service = _service(workload)
        try:
            clock = {"now": 0.0}
            manager = SessionManager(
                default_ttl=10.0,
                max_sessions=2,
                clock=lambda: clock["now"],
            )
            view = service.snapshot()
            first = manager.create(view)
            manager.create(view, ttl=1.0)
            with pytest.raises(BackpressureError):
                manager.create(view)
            clock["now"] = 2.0  # second session expired; room again
            manager.create(view)
            assert manager.get(first).version == view.version
            clock["now"] = 50.0
            with pytest.raises(SessionNotFoundError):
                manager.get(first)
        finally:
            service.close()

    def test_pinned_session_bit_stable_under_drains(self, workload):
        service = _service(workload, writer="background")
        graph, _, updates = workload

        async def body(door):
            async with HTTPClient(door.host, door.port) as client:
                status, created = await client.request(
                    "POST", "/session", {"ttl": 60}
                )
                assert status == 201
                session = created["session"]
                pairs = [(0, 1), (2, 3), (5, 7), (1, 1)]
                reference = {}
                for a, b in pairs:
                    status, body_json = await client.request(
                        "POST",
                        "/query",
                        {
                            "kind": "similarity",
                            "node_a": a,
                            "node_b": b,
                            "session": session,
                        },
                    )
                    assert status == 200
                    assert body_json["version"] == created["version"]
                    reference[(a, b)] = body_json["value"]

                service.submit_many(updates)
                service.flush()  # versions advance under the session

                last_version = -1
                for a, b in pairs:
                    status, pinned = await client.request(
                        "POST",
                        "/query",
                        {
                            "kind": "similarity",
                            "node_a": a,
                            "node_b": b,
                            "session": session,
                        },
                    )
                    assert status == 200
                    assert pinned["value"] == reference[(a, b)]
                    assert pinned["version"] == created["version"]
                    status, fresh = await client.request(
                        "POST",
                        "/query",
                        {"kind": "similarity", "node_a": a, "node_b": b},
                    )
                    assert status == 200
                    assert fresh["version"] >= max(
                        last_version, created["version"]
                    )
                    last_version = fresh["version"]

                status, _ = await client.request(
                    "DELETE", f"/session/{session}"
                )
                assert status == 200
                status, body_json = await client.request(
                    "POST",
                    "/query",
                    {
                        "kind": "similarity",
                        "node_a": 0,
                        "node_b": 1,
                        "session": session,
                    },
                )
                assert status == 404
                assert body_json["error"] == "SessionNotFoundError"
            return True

        try:
            assert asyncio.run(_with_door(service, body))
        finally:
            service.close()


# ------------------------------------------------------------------ #
# Subscriptions
# ------------------------------------------------------------------ #


class TestSubscriptions:
    def test_delta_primitives(self):
        old = [(0, 1, 0.5), (2, 3, 0.4), (4, 5, 0.3)]
        new = [(0, 1, 0.5), (4, 5, 0.45), (2, 3, 0.4), (6, 7, 0.2)]
        changed = diff_ranking(old, new)
        assert apply_delta(old, len(new), changed) == new
        shrunk = new[:2]
        assert apply_delta(new, 2, diff_ranking(new, shrunk)) == shrunk
        assert ranking_digest(new) != ranking_digest(old)
        assert ranking_digest(list(new)) == ranking_digest(new)

    def test_deltas_match_brute_force_at_every_drain(self, workload):
        """Reconstructed-from-deltas == top_k_pairs over the dense
        matrix, at each controlled drain point."""
        service = _service(workload, writer="background")
        graph, _, updates = workload
        k = 8

        async def body(door):
            reader, writer = await ws_connect(
                door.host, door.port, f"/ws/topk?k={k}"
            )
            try:
                message = await ws_recv_json(reader)
                assert message["type"] == "snapshot"
                ranking = [tuple(entry) for entry in message["ranking"]]
                assert ranking_digest(ranking) == message["digest"]
                assert ranking == top_k_pairs(
                    service.engine.similarities(), k
                )

                for start in range(0, len(updates), 4):
                    service.submit_many(updates[start : start + 4])
                    service.flush()
                    expected = top_k_pairs(
                        service.engine.similarities(), k
                    )
                    if expected == ranking:
                        continue  # nothing pushed for a no-op drain
                    message = await asyncio.wait_for(
                        ws_recv_json(reader), timeout=10
                    )
                    assert message["type"] == "delta"
                    ranking = apply_delta(
                        ranking, message["size"], message["changed"]
                    )
                    assert ranking_digest(ranking) == message["digest"]
                    assert ranking == expected
            finally:
                writer.close()
            return True

        try:
            assert asyncio.run(_with_door(service, body))
        finally:
            service.close()

    def test_k_out_of_range_refused(self, workload):
        service = _service(workload)

        async def body(door):
            with pytest.raises(ProtocolError):
                await ws_connect(door.host, door.port, "/ws/topk?k=0")
            with pytest.raises(ProtocolError):
                await ws_connect(door.host, door.port, "/ws/topk?k=999")
            return True

        config = FrontDoorConfig(subscription_max_k=20)
        try:
            assert asyncio.run(_with_door(service, body, config))
        finally:
            service.close()

    def test_stop_sends_terminal_frame(self, workload):
        service = _service(workload)

        async def body():
            door = FrontDoor(service, FrontDoorConfig())
            await door.start()
            reader, writer = await ws_connect(
                door.host, door.port, "/ws/topk?k=5"
            )
            snapshot = await ws_recv_json(reader)
            assert snapshot["type"] == "snapshot"
            await door.stop()
            closed = await asyncio.wait_for(ws_recv_json(reader), timeout=5)
            assert closed is None or closed.get("type") == "closed"
            writer.close()
            assert len(door.sessions) == 0
            return True

        try:
            assert asyncio.run(body())
        finally:
            service.close()


# ------------------------------------------------------------------ #
# Error taxonomy over the wire
# ------------------------------------------------------------------ #


class TestWireErrors:
    def test_bad_requests_are_400(self, workload):
        service = _service(workload)

        async def body(door):
            async with HTTPClient(door.host, door.port) as client:
                status, body_json = await client.request(
                    "POST", "/query", {"kind": "bogus"}
                )
                assert status == 400
                assert body_json["error"] == "ConfigError"
                status, body_json = await client.request(
                    "POST", "/query", {"kind": "similarity", "node_a": 1}
                )
                assert status == 400
                status, _ = await client.request("GET", "/no/such/route")
                assert status == 400
            return True

        try:
            assert asyncio.run(_with_door(service, body))
        finally:
            service.close()

    def test_update_validation_rejects_poison(self, workload):
        graph, _, _ = workload
        edge = next(iter(graph.edges()))
        missing = None
        for a in range(graph.num_nodes):
            for b in range(graph.num_nodes):
                if a != b and not graph.has_edge(a, b):
                    missing = (a, b)
                    break
            if missing:
                break
        service = _service(workload)

        async def body(door):
            async with HTTPClient(door.host, door.port) as client:
                status, body_json = await client.request(
                    "POST",
                    "/updates",
                    {
                        "updates": [
                            ["insert", *edge],  # duplicate: rejected
                            ["delete", *missing],  # absent: rejected
                            ["delete", *edge],  # valid
                            ["insert", *edge],  # valid again vs local effect
                        ],
                        "validate": True,
                    },
                )
                assert status == 200
                assert body_json["accepted"] == 2
                assert len(body_json["rejected"]) == 2
            return True

        try:
            assert asyncio.run(_with_door(service, body))
        finally:
            service.close()


class TestDegraded:
    def test_degraded_pool_is_503(self, workload):
        from repro.cluster import FaultAction, FaultPlan

        graph, scores, updates = workload
        service = SimRankService(
            graph.copy(),
            CFG,
            initial_scores=scores.copy(),
            executor="process",
            workers=2,
            shard_rows=16,
            degraded_policy="reject",
            executor_options={
                "fault_plan": FaultPlan(
                    actions=(
                        FaultAction(
                            kind="poison", worker_id=0, at_command=2
                        ),
                    )
                )
            },
        )

        async def body(door):
            async with HTTPClient(door.host, door.port) as client:
                # The poison surfaces at a pipelined sync point — keep
                # draining/reading until the service flips degraded.
                for start in range(0, len(updates), 2):
                    if service.degraded:
                        break
                    try:
                        service.submit_many(updates[start : start + 2])
                        service.drain()
                        service.similarity(0, 1)  # read sync point
                    except Exception:
                        pass
                assert service.degraded
                # reject policy: writes refuse with 503 across the wire.
                status, body_json = await client.request(
                    "POST",
                    "/updates",
                    {"updates": [["delete", *next(iter(graph.edges()))]]},
                )
                assert status == 503
                assert body_json["error"] == "DegradedModeError"
                status, body_json = await client.request("POST", "/flush", {})
                assert status == 503
                assert body_json["error"] == "DegradedModeError"
                status, health = await client.request("GET", "/health")
                assert status == 200
                assert health["degraded"] is True
            return True

        try:
            assert asyncio.run(_with_door(service, body))
        finally:
            service.close()


# ------------------------------------------------------------------ #
# Close discipline
# ------------------------------------------------------------------ #


class TestClose:
    def test_close_is_idempotent_and_concurrent_safe(self, workload):
        service = _service(workload, writer="background")
        errors = []

        def closer():
            try:
                service.close()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert service.closed
        service.close()  # and again, sequentially
        with pytest.raises(ServiceClosedError):
            service.similarity(0, 1)
        with pytest.raises(ServiceClosedError):
            service.submit(EdgeUpdate.insert(0, 1))
        with pytest.raises(ServiceClosedError):
            service.snapshot()

    def test_door_stop_is_idempotent_and_releases_sessions(self, workload):
        service = _service(workload)

        async def body():
            door = FrontDoor(service, FrontDoorConfig())
            await door.start()
            async with HTTPClient(door.host, door.port) as client:
                for _ in range(3):
                    status, _ = await client.request(
                        "POST", "/session", {}
                    )
                    assert status == 201
                assert len(door.sessions) == 3
            await door.stop()
            await door.stop()  # idempotent
            assert len(door.sessions) == 0
            return True

        try:
            assert asyncio.run(body())
        finally:
            service.close()


# ------------------------------------------------------------------ #
# Protocol corners
# ------------------------------------------------------------------ #


class TestProtocol:
    def test_websocket_accept_rfc_vector(self):
        # The worked example from RFC 6455 section 1.3.
        assert (
            websocket_accept("dGhlIHNhbXBsZSBub25jZQ==")
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        )

    def test_malformed_http_is_400_not_a_crash(self, workload):
        service = _service(workload)

        async def body(door):
            reader, writer = await asyncio.open_connection(
                door.host, door.port
            )
            writer.write(b"NOT A REQUEST\r\n\r\n")
            await writer.drain()
            response = await reader.read(200)
            assert b"400" in response.split(b"\r\n")[0]
            writer.close()
            # The server survived: a normal request still works.
            async with HTTPClient(door.host, door.port) as client:
                status, _ = await client.request("GET", "/health")
                assert status == 200
            return True

        try:
            assert asyncio.run(_with_door(service, body))
        finally:
            service.close()

    def test_query_result_survives_json(self, workload):
        service = _service(workload)
        try:
            result = service.query(
                {"kind": "single_source", "node": 3}
            )
            over_wire = json.loads(json.dumps(result.to_dict()))
            assert over_wire["value"] == [
                float(x) for x in result.value
            ]
            pair = service.query(
                {"kind": "similarity", "node_a": 1, "node_b": 2}
            )
            assert json.loads(json.dumps(pair.to_dict()))["value"] == float(
                pair.value
            )
        finally:
            service.close()


# ------------------------------------------------------------------ #
# Telemetry over the wire
# ------------------------------------------------------------------ #


class TestTelemetryWire:
    def test_explicit_trace_id_spans_query_path(self, workload):
        """A client-supplied ``X-Trace-Id`` is force-sampled and every
        layer the request crosses lands a span under it: the admission
        wait, the snapshot pin, the vectorized execute, and the front
        door dispatch itself."""
        service = _service(workload)

        async def body(door):
            async with HTTPClient(door.host, door.port) as client:
                status, body_json = await client.request(
                    "POST",
                    "/query",
                    {"kind": "similarity", "node_a": 1, "node_b": 2},
                    headers={"X-Trace-Id": "trace-e2e-query"},
                )
                assert status == 200
                assert body_json["trace_id"] == "trace-e2e-query"
                status, traces = await client.request(
                    "GET", "/traces?trace_id=trace-e2e-query"
                )
                assert status == 200
                names = [span["name"] for span in traces["spans"]]
                for expected in (
                    "admission.wait",
                    "admission.pin",
                    "admission.execute",
                    "frontdoor.query",
                ):
                    assert expected in names, names
                execute = traces["spans"][names.index("admission.execute")]
                assert execute["attrs"]["batch_size"] >= 1  # fan-in
                for span in traces["spans"]:
                    assert span["trace_id"] == "trace-e2e-query"
                    assert span["duration_ms"] >= 0.0
            return True

        try:
            assert asyncio.run(_with_door(service, body))
        finally:
            service.close()

    def test_update_trace_reaches_drain(self, workload):
        """An ``X-Trace-Id`` on POST /updates follows the accepted
        updates through the background drain: the flush-side apply span
        lands in the same trace the client named."""
        graph, _, _ = workload
        edge = next(iter(graph.edges()))
        service = _service(workload)

        async def body(door):
            async with HTTPClient(door.host, door.port) as client:
                status, body_json = await client.request(
                    "POST",
                    "/updates",
                    {"updates": [["delete", *edge]]},
                    headers={"X-Trace-Id": "trace-e2e-update"},
                )
                assert status == 200
                assert body_json["accepted"] == 1
                assert body_json["trace_id"] == "trace-e2e-update"
                status, _ = await client.request("POST", "/flush", {})
                assert status == 200
                status, traces = await client.request(
                    "GET", "/traces?trace_id=trace-e2e-update"
                )
                assert status == 200
                names = [span["name"] for span in traces["spans"]]
                assert "updates.submit" in names, names
                assert "drain.apply" in names, names
                drain = traces["spans"][names.index("drain.apply")]
                assert drain["attrs"]["updates"] >= 1
            return True

        try:
            assert asyncio.run(_with_door(service, body))
        finally:
            service.close()

    def test_worker_apply_spans_join_the_trace(self, workload):
        """With the process executor the trace crosses the cluster
        pipe: command headers carry the id and the parent materialises
        per-worker ``worker.apply`` spans from the replies."""
        graph, scores, _ = workload
        edge = next(iter(graph.edges()))
        service = SimRankService(
            graph.copy(),
            CFG,
            initial_scores=scores.copy(),
            executor="process",
            workers=2,
            shard_rows=16,
        )

        async def body(door):
            async with HTTPClient(door.host, door.port) as client:
                status, body_json = await client.request(
                    "POST",
                    "/updates",
                    {"updates": [["delete", *edge]]},
                    headers={"X-Trace-Id": "trace-e2e-worker"},
                )
                assert status == 200
                assert body_json["accepted"] == 1
                status, _ = await client.request("POST", "/flush", {})
                assert status == 200
                # Batch replies are pipelined; a read is the sync point
                # that collects them (and materialises worker spans).
                status, _ = await client.request(
                    "POST",
                    "/query",
                    {"kind": "similarity", "node_a": 0, "node_b": 1},
                )
                assert status == 200
                status, traces = await client.request(
                    "GET", "/traces?trace_id=trace-e2e-worker"
                )
                assert status == 200
                spans = traces["spans"]
                names = [span["name"] for span in spans]
                assert "drain.apply" in names, names
                workers = [s for s in spans if s["name"] == "worker.apply"]
                assert workers, names
                assert {w["attrs"]["worker"] for w in workers} <= {0, 1}
                for span in workers:
                    assert span["trace_id"] == "trace-e2e-worker"
            return True

        try:
            assert asyncio.run(_with_door(service, body))
        finally:
            service.close()

    def test_prometheus_scrape_and_legacy_json(self, workload):
        """`/metrics?format=prometheus` serves valid text exposition;
        the JSON default keeps every historical front-door key."""
        from repro.telemetry import validate_scrape

        service = _service(workload)

        async def body(door):
            async with HTTPClient(door.host, door.port) as client:
                status, _ = await client.request(
                    "POST",
                    "/query",
                    {"kind": "similarity", "node_a": 0, "node_b": 3},
                )
                assert status == 200
                status, text = await client.request(
                    "GET", "/metrics?format=prometheus", raw=True
                )
                assert status == 200
                summary = validate_scrape(text)
                assert summary["families"] > 10
                assert summary["histograms"] >= 1
                assert "repro_frontdoor_request_seconds_bucket" in text

                status, report = await client.request("GET", "/metrics")
                assert status == 200
                frontdoor = report["frontdoor"]
                assert set(frontdoor["admission"]) == {
                    "window_seconds",
                    "max_batch",
                    "batches",
                    "batched_queries",
                    "mean_batch_size",
                    "max_batch_seen",
                }
                assert set(frontdoor["sessions"]) == {
                    "active",
                    "max_sessions",
                    "default_ttl_seconds",
                    "created",
                    "expired",
                    "released",
                    "pinned_bytes",
                }
                assert set(frontdoor["subscriptions"]) == {
                    "active",
                    "max_k",
                    "polls",
                    "deltas_pushed",
                    "skipped_by_revision",
                    "quiet_rounds",
                }
                assert "telemetry" in report
            return True

        try:
            assert asyncio.run(_with_door(service, body))
        finally:
            service.close()

    def test_unsampled_requests_carry_no_trace(self, workload):
        """With sampling off, minted ids are dropped at the door:
        responses carry no trace_id and the span ring stays empty."""
        from repro.serving import TelemetryConfig

        graph, scores, _ = workload
        config = ServiceConfig(
            damping=CFG.damping,
            iterations=CFG.iterations,
            telemetry=TelemetryConfig(trace_sample_rate=0.0),
        )
        service = SimRankService(
            graph.copy(), config, initial_scores=scores.copy()
        )

        async def body(door):
            async with HTTPClient(door.host, door.port) as client:
                status, body_json = await client.request(
                    "POST",
                    "/query",
                    {"kind": "similarity", "node_a": 1, "node_b": 2},
                )
                assert status == 200
                assert "trace_id" not in body_json
                status, traces = await client.request("GET", "/traces")
                assert status == 200
                assert traces["spans"] == []
            return True

        try:
            assert asyncio.run(_with_door(service, body))
        finally:
            service.close()
