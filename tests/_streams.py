"""Shared update-stream generator for the serving/writer/top-k suites."""

from __future__ import annotations

import numpy as np

from repro.graph.updates import EdgeUpdate


def random_update_stream(graph, num_updates, seed):
    """A valid randomized mixed insert/delete stream for ``graph``.

    Each step picks a random ordered pair and emits the update that is
    legal against the stream applied so far (delete if the edge exists,
    insert otherwise), so the whole stream can be applied sequentially
    without tripping the duplicate/missing-edge guards.
    """
    rng = np.random.default_rng(seed)
    live = graph.copy()
    updates = []
    nodes = live.num_nodes
    while len(updates) < num_updates:
        source = int(rng.integers(nodes))
        target = int(rng.integers(nodes))
        if source == target:
            continue
        if live.has_edge(source, target):
            update = EdgeUpdate.delete(source, target)
        else:
            update = EdgeUpdate.insert(source, target)
        update.apply_to(live)
        updates.append(update)
    return updates
