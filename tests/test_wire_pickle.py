"""Pickle round trips for everything that crosses the process boundary.

The cluster subsystem ships :class:`UpdatePlan` objects, packed
transition payloads, frozen transition snapshots, and per-shard top-k
heap state between processes.  These property tests pin the wire
contract: a ``pickle.loads(pickle.dumps(x))`` round trip must preserve
apply semantics and ranking results exactly.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import SimRankConfig
from repro.executor.score_store import ScoreStore
from repro.executor.topk_index import ShardTopK
from repro.graph.generators import erdos_renyi_digraph
from repro.graph.updates import EdgeUpdate, UpdateBatch
from repro.incremental.plan import apply_plan_dense, plan_unit_update
from repro.linalg.qstore import TransitionSnapshot, TransitionStore
from repro.metrics.topk import top_k_pairs
from repro.simrank.matrix import matrix_simrank

from _streams import random_update_stream

CFG = SimRankConfig(damping=0.6, iterations=8)


def _roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


def _plans_for(graph, count, seed):
    """Plan ``count`` valid unit updates against a live session."""
    store = TransitionStore.from_graph(graph)
    scores = ScoreStore(matrix_simrank(graph, CFG), shard_rows=32)
    live = graph.copy()
    plans = []
    for update in random_update_stream(graph, count, seed=seed):
        plan = plan_unit_update(store, scores, update, live, CFG)
        plans.append((plan, live.num_nodes))
        scores.apply_plan(plan)
        update.apply_to(live)
        store.apply_update(update)
    return plans


class TestUpdatePlanPickle:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_apply_semantics_preserved(self, seed):
        graph = erdos_renyi_digraph(60, 0.05, seed=seed)
        for plan, n in _plans_for(graph, 8, seed=seed + 100):
            clone = _roundtrip(plan)
            direct = apply_plan_dense(np.zeros((n, n)), plan)
            wired = apply_plan_dense(np.zeros((n, n)), clone)
            assert np.array_equal(direct, wired)
            assert clone.target == plan.target
            assert clone.rank == plan.rank
            assert np.array_equal(clone.rows_union, plan.rows_union)
            assert np.array_equal(clone.cols_union, plan.cols_union)

    def test_vectors_dropped_from_wire_format(self):
        graph = erdos_renyi_digraph(40, 0.06, seed=9)
        (plan, _), *_ = _plans_for(graph, 1, seed=1)
        assert plan.vectors is not None
        assert _roundtrip(plan).vectors is None

    def test_sharded_apply_of_unpickled_plan_matches(self):
        graph = erdos_renyi_digraph(60, 0.05, seed=4)
        scores = matrix_simrank(graph, CFG)
        direct_store = ScoreStore(scores, shard_rows=16)
        wired_store = ScoreStore(scores, shard_rows=16)
        for plan, _ in _plans_for(graph, 6, seed=44):
            direct_store.apply_plan(plan)
            wired_store.apply_plan(_roundtrip(plan))
        assert np.array_equal(
            direct_store.to_array(), wired_store.to_array()
        )


class TestTransitionPayloadPickle:
    def test_export_packed_roundtrip_rebuilds_q(self):
        graph = erdos_renyi_digraph(80, 0.05, seed=2)
        store = TransitionStore.from_graph(graph)
        payload = _roundtrip(store.export_packed())
        rebuilt = TransitionSnapshot.from_packed(payload)
        assert rebuilt.version == store.version
        dense = store.csr_matrix().toarray()
        assert np.array_equal(rebuilt.csr_matrix().toarray(), dense)
        x = np.random.default_rng(0).random(graph.num_nodes)
        assert np.array_equal(rebuilt.matvec(x), store.csr_matrix() @ x)
        assert np.array_equal(
            rebuilt.rmatvec(x), store.csr_matrix().T @ x
        )

    def test_export_packed_roundtrip_after_surgery(self):
        graph = erdos_renyi_digraph(50, 0.06, seed=3)
        store = TransitionStore.from_graph(graph)
        live = graph.copy()
        for update in random_update_stream(graph, 12, seed=5):
            update.apply_to(live)
            store.apply_update(update)
        rebuilt = TransitionSnapshot.from_packed(
            _roundtrip(store.export_packed())
        )
        assert np.array_equal(
            rebuilt.csr_matrix().toarray(), store.csr_matrix().toarray()
        )

    def test_transition_snapshot_pickles(self):
        graph = erdos_renyi_digraph(30, 0.08, seed=6)
        store = TransitionStore.from_graph(graph)
        snap = store.snapshot()
        clone = _roundtrip(snap)
        assert clone.version == snap.version
        assert np.array_equal(
            clone.csr_matrix().toarray(), snap.csr_matrix().toarray()
        )


class TestShardTopKPickle:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_heap_state_roundtrip_preserves_ranking(self, seed):
        graph = erdos_renyi_digraph(70, 0.05, seed=seed)
        scores = matrix_simrank(graph, CFG)
        store = ScoreStore(scores, shard_rows=16)
        index = ShardTopK(store, k=8)
        assert index.top_k(8) == top_k_pairs(store.to_array(), 8)

        # Round-trip the warmed heap state and attach it to an
        # equivalent store: rankings must be identical without rescans.
        clone = _roundtrip(index)
        twin = ScoreStore(scores, shard_rows=16)
        clone.attach_store(twin)
        rescans_before = clone.stats.shard_rescans
        assert clone.top_k(8) == index.top_k(8)
        assert clone.stats.shard_rescans == rescans_before

        # The unpickled index keeps maintaining correctly under plans.
        for plan, _ in _plans_for(graph, 5, seed=seed + 9):
            store.apply_plan(plan)
            twin.apply_plan(plan)
            assert clone.top_k(8) == index.top_k(8)
            assert clone.top_k(8) == top_k_pairs(twin.to_array(), 8)

    def test_shard_range_state_roundtrip(self):
        graph = erdos_renyi_digraph(60, 0.05, seed=12)
        scores = matrix_simrank(graph, CFG)
        store = ScoreStore(scores, shard_rows=16)
        index = ShardTopK(store, k=5, shard_range=(1, 3), track_changes=True)
        index.top_k(5)
        clone = _roundtrip(index)
        clone.attach_store(ScoreStore(scores, shard_rows=16))
        assert clone.shard_range == (1, 3)
        assert clone.top_k(5) == index.top_k(5)


class TestUpdateStreamPickle:
    def test_edge_updates_and_batches(self):
        updates = [EdgeUpdate.insert(1, 2), EdgeUpdate.delete(3, 4)]
        batch = UpdateBatch(updates)
        clone = _roundtrip(batch)
        assert list(clone) == updates
        assert _roundtrip(updates[0]) == updates[0]
