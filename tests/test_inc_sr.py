"""Tests for repro.incremental.inc_sr (Algorithm 2: pruned updates)."""

import numpy as np
import pytest

from repro import SimRankConfig
from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import (
    erdos_renyi_digraph,
    preferential_attachment_digraph,
    random_deletions,
    random_insertions,
)
from repro.graph.transition import backward_transition_matrix
from repro.graph.updates import EdgeUpdate
from repro.incremental.inc_sr import inc_sr_update
from repro.incremental.inc_usr import inc_usr_update
from repro.simrank.exact import exact_simrank, truncation_error_bound


def both_algorithms(graph, update, config):
    """Run Inc-SR and Inc-uSR from the same exact state."""
    q = backward_transition_matrix(graph)
    s_old = exact_simrank(graph, config)
    pruned = inc_sr_update(graph, q, s_old, update, config)
    unpruned = inc_usr_update(graph, q, s_old, update, config)
    return pruned, unpruned


class TestLosslessnessAgainstIncUSR:
    """The paper's headline: pruning sacrifices no exactness."""

    @pytest.mark.parametrize("seed", range(5))
    def test_insertions_identical(self, seed):
        graph = erdos_renyi_digraph(24, 0.1, seed=seed)
        config = SimRankConfig(damping=0.6, iterations=15)
        rng = np.random.default_rng(seed)
        non_edges = [
            (s, t)
            for s in range(24)
            for t in range(24)
            if s != t and not graph.has_edge(s, t)
        ]
        s, t = non_edges[int(rng.integers(len(non_edges)))]
        pruned, unpruned = both_algorithms(graph, EdgeUpdate.insert(s, t), config)
        np.testing.assert_allclose(pruned.new_s, unpruned.new_s, atol=1e-12)

    @pytest.mark.parametrize("seed", range(5))
    def test_deletions_identical(self, seed):
        graph = erdos_renyi_digraph(24, 0.1, seed=seed + 50)
        config = SimRankConfig(damping=0.6, iterations=15)
        rng = np.random.default_rng(seed)
        edges = sorted(graph.edge_set())
        s, t = edges[int(rng.integers(len(edges)))]
        pruned, unpruned = both_algorithms(graph, EdgeUpdate.delete(s, t), config)
        np.testing.assert_allclose(pruned.new_s, unpruned.new_s, atol=1e-12)

    def test_degree_branch_coverage(self, diamond_graph):
        config = SimRankConfig(damping=0.8, iterations=20)
        cases = [
            EdgeUpdate.insert(3, 0),  # d_j = 0
            EdgeUpdate.insert(0, 3),  # d_j > 0
            EdgeUpdate.delete(0, 1),  # d_j = 1
            EdgeUpdate.delete(1, 3),  # d_j > 1
        ]
        for update in cases:
            pruned, unpruned = both_algorithms(diamond_graph, update, config)
            np.testing.assert_allclose(
                pruned.new_s, unpruned.new_s, atol=1e-12, err_msg=str(update)
            )


class TestAgainstExact:
    def test_matches_exact_new_fixed_point(self, cyclic_graph):
        config = SimRankConfig(damping=0.6, iterations=30)
        q = backward_transition_matrix(cyclic_graph)
        s_old = exact_simrank(cyclic_graph, config)
        update = EdgeUpdate.insert(4, 2)
        result = inc_sr_update(cyclic_graph, q, s_old, update, config)
        new_graph = cyclic_graph.copy()
        update.apply_to(new_graph)
        truth = exact_simrank(new_graph, config)
        np.testing.assert_allclose(
            result.new_s, truth, atol=2 * truncation_error_bound(config)
        )


class TestAffectedAreas:
    def test_stats_populated(self, citation_graph, config):
        q = backward_transition_matrix(citation_graph)
        s_old = exact_simrank(citation_graph, config)
        result = inc_sr_update(
            citation_graph, q, s_old, EdgeUpdate.insert(3, 50), config
        )
        stats = result.affected
        assert stats is not None
        assert stats.iterations >= 1
        assert 0.0 <= stats.affected_fraction() <= 1.0
        assert stats.pruned_fraction() == pytest.approx(
            1.0 - stats.affected_fraction()
        )

    def test_localized_update_prunes_most_pairs(self):
        """A leaf insertion in a big sparse DAG touches few pairs."""
        graph = preferential_attachment_digraph(120, 2, seed=3)
        config = SimRankConfig(damping=0.6, iterations=15)
        q = backward_transition_matrix(graph)
        s_old = exact_simrank(graph, config)
        result = inc_sr_update(
            graph, q, s_old, EdgeUpdate.insert(119, 118), config
        )
        assert result.affected.pruned_fraction() > 0.5

    def test_untouched_component_has_zero_delta(self):
        graph = DynamicDiGraph.from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        config = SimRankConfig(damping=0.6, iterations=20)
        q = backward_transition_matrix(graph)
        s_old = exact_simrank(graph, config)
        result = inc_sr_update(
            graph, q, s_old, EdgeUpdate.insert(2, 0), config
        )
        delta = result.new_s - s_old
        assert np.max(np.abs(delta[3:, 3:])) == 0.0

    def test_tolerance_shrinks_affected_area(self, random_graph, config):
        q = backward_transition_matrix(random_graph)
        s_old = exact_simrank(random_graph, config)
        update = EdgeUpdate.insert(0, 20)
        exact_run = inc_sr_update(random_graph, q, s_old, update, config)
        loose_run = inc_sr_update(
            random_graph, q, s_old, update, config, tolerance=1e-4
        )
        assert (
            loose_run.affected.average_area()
            <= exact_run.affected.average_area()
        )
        # Aggressive pruning is approximate but bounded-ish.
        assert np.max(np.abs(loose_run.new_s - exact_run.new_s)) < 1e-2


class TestStateSafety:
    def test_inputs_not_mutated(self, cyclic_graph, config):
        q = backward_transition_matrix(cyclic_graph)
        s_old = exact_simrank(cyclic_graph, config)
        snapshot = s_old.copy()
        inc_sr_update(cyclic_graph, q, s_old, EdgeUpdate.insert(4, 2), config)
        np.testing.assert_array_equal(s_old, snapshot)
        assert not cyclic_graph.has_edge(4, 2)

    def test_sequential_mixed_stream_stays_lossless(self, random_graph):
        config = SimRankConfig(damping=0.6, iterations=15)
        updates = list(random_deletions(random_graph, 3, seed=1)) + list(
            random_insertions(random_graph, 3, seed=2)
        )
        q = backward_transition_matrix(random_graph)
        s_pruned = exact_simrank(random_graph, config)
        s_unpruned = s_pruned.copy()
        graph = random_graph.copy()
        from repro.graph.transition import update_transition_matrix

        for update in updates:
            s_pruned = inc_sr_update(graph, q, s_pruned, update, config).new_s
            s_unpruned = inc_usr_update(
                graph, q, s_unpruned, update, config
            ).new_s
            update.apply_to(graph)
            q = update_transition_matrix(q, update, graph)
        np.testing.assert_allclose(s_pruned, s_unpruned, atol=1e-10)
