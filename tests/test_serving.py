"""Tests for repro.serving (snapshots, scheduler, service).

The two property tests required by the serving contract:

* **snapshot isolation** — a pinned :class:`SnapshotView`'s scores are
  bit-identical before and after the writer applies a randomized
  update stream;
* **coalescing equivalence** — a drained (coalesced, consolidated)
  batch lands within the shared truncation bound of applying the same
  stream one unit update at a time.
"""

import numpy as np
import pytest

from repro import DynamicSimRank, SimRankConfig
from repro.graph.generators import erdos_renyi_digraph
from repro.graph.updates import EdgeUpdate, UpdateBatch
from repro.serving import SimRankService, UpdateScheduler
from repro.simrank.exact import truncation_error_bound
from repro.simrank.matrix import matrix_simrank
from repro.simrank.queries import single_source_simrank

from _streams import random_update_stream as _random_stream


class TestScheduler:
    def test_fifo_group_order_and_shapes(self):
        scheduler = UpdateScheduler()
        scheduler.submit(EdgeUpdate.insert(1, 9))
        scheduler.submit(EdgeUpdate.insert(2, 5))
        scheduler.submit(EdgeUpdate.delete(3, 9))
        batch = scheduler.drain()
        assert [u.edge for u in batch] == [(3, 9), (1, 9), (2, 5)]
        assert [u.is_insert for u in batch] == [False, True, True]

    def test_inverse_pairs_cancel(self):
        scheduler = UpdateScheduler()
        scheduler.submit(EdgeUpdate.insert(1, 2))
        scheduler.submit(EdgeUpdate.delete(1, 2))
        scheduler.submit(EdgeUpdate.delete(4, 2))
        scheduler.submit(EdgeUpdate.insert(4, 2))
        assert len(scheduler) == 0
        assert scheduler.stats.cancelled_pairs == 2
        assert len(scheduler.drain()) == 0

    def test_duplicate_submits_do_not_inflate_pending(self):
        # The O(1) counter must agree with the net dict state even when
        # the same update is submitted repeatedly (the bounded-queue
        # backpressure check reads len()).
        scheduler = UpdateScheduler()
        for _ in range(3):
            scheduler.submit(EdgeUpdate.insert(1, 7))
        assert len(scheduler) == 1
        scheduler.submit(EdgeUpdate.delete(1, 7))
        assert len(scheduler) == 0
        for _ in range(2):
            scheduler.submit(EdgeUpdate.delete(2, 7))
        assert len(scheduler) == 1
        batch = scheduler.drain()
        assert [u.edge for u in batch] == [(2, 7)]
        assert len(scheduler) == 0

    def test_drain_empties_queue(self):
        scheduler = UpdateScheduler()
        scheduler.submit_many(
            [EdgeUpdate.insert(0, 1), EdgeUpdate.insert(2, 1)]
        )
        assert len(scheduler) == 2
        assert scheduler.pending_targets == 1
        batch = scheduler.drain()
        assert len(batch) == 2
        assert len(scheduler) == 0
        assert scheduler.pending_targets == 0

    def test_stats_and_coalescing_ratio(self):
        scheduler = UpdateScheduler()
        scheduler.submit_many(
            [
                EdgeUpdate.insert(0, 7),
                EdgeUpdate.insert(1, 7),
                EdgeUpdate.insert(2, 7),
                EdgeUpdate.insert(3, 8),
            ]
        )
        scheduler.drain()
        stats = scheduler.stats
        assert stats.submitted == 4
        assert stats.drained_updates == 4
        assert stats.drained_groups == 2
        assert stats.drained_batches == 1
        assert stats.coalescing_ratio() == 2.0

    def test_net_stream_preserves_graph_semantics(self):
        graph = erdos_renyi_digraph(30, 0.08, seed=5)
        stream = _random_stream(graph, 60, seed=6)
        sequential = graph.copy()
        for update in stream:
            update.apply_to(sequential)

        scheduler = UpdateScheduler()
        scheduler.submit_many(stream)
        coalesced = graph.copy()
        for update in scheduler.drain():
            update.apply_to(coalesced)
        assert set(sequential.edges()) == set(coalesced.edges())


class TestSnapshotIsolation:
    def test_pinned_view_is_bit_identical_across_writer_stream(self):
        config = SimRankConfig(damping=0.6, iterations=12)
        graph = erdos_renyi_digraph(70, 0.05, seed=11)
        service = SimRankService(graph, config, shard_rows=16)
        view = service.snapshot()
        frozen_scores = view.similarities()
        frozen_single_source = view.single_source(3)
        frozen_top = view.top_k(10)

        rng_seeds = (21, 22, 23)
        for seed in rng_seeds:
            stream = _random_stream(service.engine.graph, 40, seed=seed)
            service.submit_many(stream)
            service.drain()

        np.testing.assert_array_equal(view.similarities(), frozen_scores)
        np.testing.assert_array_equal(
            view.single_source(3), frozen_single_source
        )
        assert view.top_k(10) == frozen_top
        # The writer really moved on.
        assert service.version > view.version
        assert not np.array_equal(
            service.snapshot().similarities(), frozen_scores
        )

    def test_views_pinned_at_different_versions_coexist(self):
        config = SimRankConfig(damping=0.6, iterations=10)
        graph = erdos_renyi_digraph(40, 0.07, seed=3)
        service = SimRankService(graph, config, shard_rows=8)
        views = []
        expected = []
        for seed in range(4):
            views.append(service.snapshot())
            expected.append(views[-1].similarities())
            service.submit_many(
                _random_stream(service.engine.graph, 15, seed=seed)
            )
            service.drain()
        for view, scores in zip(views, expected):
            np.testing.assert_array_equal(view.similarities(), scores)
        versions = [view.version for view in views]
        assert versions == sorted(versions)
        assert len(set(versions)) == len(versions)

    def test_view_matches_engine_state_at_pin_time(self):
        config = SimRankConfig(damping=0.6, iterations=12)
        graph = erdos_renyi_digraph(30, 0.1, seed=9)
        service = SimRankService(graph, config, shard_rows=8)
        before = service.engine.similarities()
        view = service.snapshot()
        service.submit_many(_random_stream(service.engine.graph, 25, seed=1))
        service.drain()
        np.testing.assert_array_equal(view.similarities(), before)
        assert view.similarity(2, 5) == before[2, 5]
        np.testing.assert_array_equal(view.similarity_row(4), before[4])

    def test_single_source_served_from_frozen_q(self):
        config = SimRankConfig(damping=0.6, iterations=12)
        graph = erdos_renyi_digraph(35, 0.08, seed=13)
        service = SimRankService(graph, config)
        frozen_q = service.engine.transition_matrix.copy()
        view = service.snapshot()
        service.submit_many(_random_stream(service.engine.graph, 30, seed=2))
        service.drain()
        np.testing.assert_array_equal(
            view.single_source(7),
            single_source_simrank(frozen_q, 7, config),
        )
        assert view.single_pair(7, 9) == pytest.approx(
            single_source_simrank(frozen_q, 7, config)[9]
        )


class TestCoalescingEquivalence:
    def test_drained_batch_matches_one_at_a_time(self):
        config = SimRankConfig(damping=0.6, iterations=25)
        graph = erdos_renyi_digraph(50, 0.06, seed=17)
        stream = _random_stream(graph, 50, seed=18)

        unit_engine = DynamicSimRank(graph, config, algorithm="inc-sr")
        for update in stream:
            unit_engine.apply(update)

        service = SimRankService(graph, config, shard_rows=16)
        service.submit_many(stream)
        groups = service.drain()
        assert 0 < groups <= len(stream)

        bound = truncation_error_bound(config)
        np.testing.assert_allclose(
            service.engine.similarities(),
            unit_engine.similarities(),
            atol=4 * bound,
        )
        # Both ride within the truncation bound of the exact batch answer.
        truth = matrix_simrank(
            UpdateBatch(stream).applied(graph), config
        )
        np.testing.assert_allclose(
            service.engine.similarities(), truth, atol=4 * bound
        )


class TestService:
    def test_version_and_pending_accounting(self):
        config = SimRankConfig(damping=0.6, iterations=10)
        graph = erdos_renyi_digraph(20, 0.1, seed=7)
        service = SimRankService(graph, config)
        assert service.version == 0
        assert service.drain() == 0  # empty drain is a no-op
        assert service.version == 0
        stream = _random_stream(graph, 10, seed=4)
        service.submit_many(stream)
        assert service.pending == len(stream)
        service.drain()
        assert service.pending == 0
        assert service.version == 1

    def test_failed_drain_requeues_pending_updates(self):
        config = SimRankConfig(damping=0.6, iterations=10)
        graph = erdos_renyi_digraph(20, 0.1, seed=7)
        service = SimRankService(graph, config)
        existing = next(iter(graph.edges()))
        valid_target = next(
            t for t in range(20) if t != 5 and not graph.has_edge(5, t)
        )
        service.submit(EdgeUpdate.insert(*existing))  # invalid: exists
        service.submit(EdgeUpdate.insert(5, valid_target))
        version = service.version
        with pytest.raises(Exception):
            service.drain()
        # Nothing applied, nothing lost: both updates are queued again.
        assert service.version == version
        assert service.pending == 2

    def test_live_similarity_tracks_writer(self):
        config = SimRankConfig(damping=0.6, iterations=10)
        graph = erdos_renyi_digraph(20, 0.1, seed=8)
        service = SimRankService(graph, config)
        view = service.snapshot()
        stream = _random_stream(graph, 12, seed=5)
        service.submit_many(stream)
        service.drain()
        live = service.engine.similarities()
        assert service.similarity(1, 2) == live[1, 2]
        assert not np.array_equal(view.similarities(), live)

    def test_add_node_through_service(self):
        config = SimRankConfig(damping=0.6, iterations=10)
        graph = erdos_renyi_digraph(12, 0.2, seed=2)
        service = SimRankService(graph, config, shard_rows=4)
        view = service.snapshot()
        node = service.add_node()
        assert node == 12
        assert service.num_nodes == 13
        assert view.num_nodes == 12  # pinned view keeps the old universe
        assert service.similarity(node, node) == pytest.approx(
            1.0 - config.damping
        )

    def test_memory_report_layers(self):
        config = SimRankConfig(damping=0.6, iterations=10)
        graph = erdos_renyi_digraph(20, 0.1, seed=6)
        service = SimRankService(graph, config, shard_rows=8)
        service.snapshot()
        report = service.memory_report()
        for key in (
            "transition_store_bytes",
            "workspace_bytes",
            "score_buffer_bytes",
            "score_shards",
            "scheduler_pending",
        ):
            assert key in report
        assert report["score_shared_shards"] == 3


class TestTargetIndex:
    """The scheduler's O(1)-maintained target index (replaces the scan)."""

    def test_pending_targets_tracks_random_churn(self):
        rng = np.random.default_rng(42)
        scheduler = UpdateScheduler()
        # Shadow model: recompute the active-target set from scratch.
        for _ in range(500):
            source = int(rng.integers(6))
            target = int(rng.integers(6))
            if source == target:
                continue
            if rng.random() < 0.5:
                scheduler.submit(EdgeUpdate.insert(source, target))
            else:
                scheduler.submit(EdgeUpdate.delete(source, target))
            expected = {
                t for (t, adds, removes) in scheduler.peek()
            }
            assert scheduler.active_targets == expected
            assert scheduler.pending_targets == len(expected)
            for t in range(6):
                assert scheduler.has_pending_target(t) == (t in expected)

    def test_cancellation_clears_target(self):
        scheduler = UpdateScheduler()
        scheduler.submit(EdgeUpdate.insert(1, 2))
        assert scheduler.has_pending_target(2)
        assert scheduler.pending_targets == 1
        scheduler.submit(EdgeUpdate.delete(1, 2))
        assert not scheduler.has_pending_target(2)
        assert scheduler.pending_targets == 0
        assert scheduler.active_targets == frozenset()

    def test_drain_resets_index(self):
        scheduler = UpdateScheduler()
        scheduler.submit(EdgeUpdate.insert(1, 2))
        scheduler.submit(EdgeUpdate.insert(3, 4))
        assert scheduler.pending_targets == 2
        scheduler.drain()
        assert scheduler.pending_targets == 0
        assert scheduler.active_targets == frozenset()
        assert not scheduler.has_pending_target(2)


class TestApplyMetrics:
    """Per-shard apply wall-time gauges on the executor surface."""

    def test_score_store_records_per_shard_seconds(self):
        config = SimRankConfig(damping=0.6, iterations=8)
        graph = erdos_renyi_digraph(60, 0.06, seed=8)
        service = SimRankService(graph, config, shard_rows=16)
        service.submit_many(_random_stream(graph, 12, seed=9))
        service.drain()
        store = service.engine.score_store
        assert store.apply_metrics.plans > 0
        assert store.apply_metrics.seconds > 0.0
        assert store.apply_metrics.per_shard_seconds
        report = store.apply_report()
        assert report["mode"] == "inproc"
        assert report["plans"] == store.apply_metrics.plans
        assert set(report["per_shard_seconds"]) <= {
            str(i) for i in range(store.num_shards)
        }

    def test_metrics_report_exposes_executor_section(self):
        config = SimRankConfig(damping=0.6, iterations=8)
        graph = erdos_renyi_digraph(40, 0.08, seed=10)
        service = SimRankService(graph, config, shard_rows=16)
        service.submit_many(_random_stream(graph, 6, seed=11))
        service.drain()
        executor = service.metrics_report()["executor"]
        assert executor["mode"] == "inproc"
        assert executor["workers"] == 0
        assert executor["apply_seconds"] > 0.0
        assert executor["mean_plan_seconds"] > 0.0
