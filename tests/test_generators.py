"""Tests for repro.graph.generators."""

import pytest

from repro.exceptions import GraphError
from repro.graph.generators import (
    erdos_renyi_digraph,
    linkage_model_digraph,
    preferential_attachment_digraph,
    random_deletions,
    random_insertions,
    random_update_batch,
)


class TestErdosRenyi:
    def test_deterministic_for_seed(self):
        a = erdos_renyi_digraph(30, 0.1, seed=42)
        b = erdos_renyi_digraph(30, 0.1, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = erdos_renyi_digraph(30, 0.1, seed=1)
        b = erdos_renyi_digraph(30, 0.1, seed=2)
        assert a != b

    def test_no_self_loops(self):
        graph = erdos_renyi_digraph(25, 0.3, seed=3)
        assert all(s != t for s, t in graph.edges())

    def test_edge_count_near_expectation(self):
        n, p = 60, 0.2
        graph = erdos_renyi_digraph(n, p, seed=4)
        expected = p * n * (n - 1)
        assert 0.7 * expected < graph.num_edges < 1.3 * expected

    @pytest.mark.parametrize("p", [-0.1, 1.1])
    def test_rejects_bad_probability(self, p):
        with pytest.raises(GraphError):
            erdos_renyi_digraph(10, p)

    def test_extreme_probabilities(self):
        assert erdos_renyi_digraph(10, 0.0, seed=1).num_edges == 0
        assert erdos_renyi_digraph(10, 1.0, seed=1).num_edges == 90


class TestPreferentialAttachment:
    def test_is_dag_under_node_order(self):
        graph = preferential_attachment_digraph(50, 3, seed=7)
        assert all(s > t for s, t in graph.edges())

    def test_out_degree_bounded(self):
        graph = preferential_attachment_digraph(50, 3, seed=7)
        assert all(graph.out_degree(v) <= 3 for v in range(50))

    def test_in_degree_skew(self):
        graph = preferential_attachment_digraph(300, 3, seed=7)
        degrees = sorted(
            (graph.in_degree(v) for v in range(300)), reverse=True
        )
        # Rich-get-richer: the hub should far exceed the median.
        assert degrees[0] >= 5 * max(1, degrees[150])

    def test_rejects_bad_parameters(self):
        with pytest.raises(GraphError):
            preferential_attachment_digraph(1, 3)
        with pytest.raises(GraphError):
            preferential_attachment_digraph(10, 0)


class TestLinkageModel:
    def test_deterministic_for_seed(self):
        a = linkage_model_digraph(40, 3, seed=9)
        b = linkage_model_digraph(40, 3, seed=9)
        assert a == b

    def test_edges_point_to_earlier_nodes(self):
        graph = linkage_model_digraph(40, 3, seed=9)
        assert all(s > t for s, t in graph.edges())

    def test_locality_zero_is_pure_preferential(self):
        graph = linkage_model_digraph(40, 3, locality=0.0, seed=9)
        assert graph.num_edges > 0

    def test_rejects_bad_locality(self):
        with pytest.raises(GraphError):
            linkage_model_digraph(10, 2, locality=1.5)


class TestUpdateSamplers:
    def test_insertions_are_new_distinct_edges(self, citation_graph):
        batch = random_insertions(citation_graph, 15, seed=1)
        assert len(batch) == 15
        edges = [update.edge for update in batch]
        assert len(set(edges)) == 15
        for source, target in edges:
            assert not citation_graph.has_edge(source, target)
            assert source != target

    def test_insertions_applicable(self, citation_graph):
        batch = random_insertions(citation_graph, 10, seed=2)
        batch.validate_against(citation_graph)

    def test_deletions_are_existing_distinct_edges(self, citation_graph):
        batch = random_deletions(citation_graph, 12, seed=3)
        assert len(batch) == 12
        edges = [update.edge for update in batch]
        assert len(set(edges)) == 12
        for source, target in edges:
            assert citation_graph.has_edge(source, target)

    def test_cannot_delete_more_than_exists(self):
        from repro.graph.digraph import DynamicDiGraph

        graph = DynamicDiGraph.from_edges(3, [(0, 1)])
        with pytest.raises(GraphError):
            random_deletions(graph, 2, seed=1)

    def test_mixed_batch_applicable(self, citation_graph):
        batch = random_update_batch(citation_graph, insertions=5, deletions=5, seed=4)
        assert batch.num_insertions == 5
        assert batch.num_deletions == 5
        batch.validate_against(citation_graph)

    def test_insertion_sampler_exhaustion_raises(self):
        from repro.graph.digraph import DynamicDiGraph

        # Complete digraph: no room for new edges.
        graph = erdos_renyi_digraph(4, 1.0, seed=1)
        with pytest.raises(GraphError):
            random_insertions(graph, 1, seed=1, max_attempts_factor=5)
