"""Graceful degradation: poison quarantine, read-only mode, failover.

The scenarios behind ``SimRankService(degraded_policy=...)``: a poison
batch deterministically kills its workers until the pool quarantines it
and declares itself unrecoverable, and the service must then either
stay up read-only (``reject``/``queue``) serving the last consistent
view, or rebuild an in-process score store from the frozen segments +
journal and keep writing (``rebuild``).  Throughout, readers pinned
before the failure must stay bit-stable.

The pool's batched dispatch is pipelined, so the failure typically
surfaces at the *next sync point* — often a read, not the drain that
shipped the poison batch.  The tests below exercise both surfacing
paths (sync drains and the background writer thread).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import SimRankConfig
from repro.cluster import FaultAction, FaultPlan
from repro.exceptions import DegradedModeError
from repro.graph.generators import erdos_renyi_digraph
from repro.graph.updates import EdgeUpdate
from repro.serving import DEGRADED_POLICIES, SimRankService
from repro.simrank.matrix import matrix_simrank

from _streams import random_update_stream

pytestmark = pytest.mark.usefixtures("shm_guard")

CFG = SimRankConfig(damping=0.6, iterations=7)


@pytest.fixture(scope="module")
def workload():
    graph = erdos_renyi_digraph(48, 0.06, seed=17)
    scores = matrix_simrank(graph, CFG)
    updates = random_update_stream(graph, 12, seed=19)
    return graph, scores, updates


def _oracle(graph, scores, updates):
    service = SimRankService(graph, CFG, initial_scores=scores)
    try:
        service.submit_many(updates)
        service.drain()
        return service.engine.similarities()
    finally:
        service.close()


def _poison_plan(at_command):
    return FaultPlan(
        actions=(
            FaultAction(kind="poison", worker_id=0, at_command=at_command),
        )
    )


def _poisoned_service(graph, scores, at_command=3, **kwargs):
    return SimRankService(
        graph,
        CFG,
        initial_scores=scores,
        executor="process",
        workers=2,
        shard_rows=16,
        executor_options={"fault_plan": _poison_plan(at_command)},
        **kwargs,
    )


class TestPolicySurface:
    def test_policies_enumerated(self):
        assert DEGRADED_POLICIES == ("reject", "queue", "rebuild")

    def test_unknown_policy_rejected(self, workload):
        graph, scores, _ = workload
        with pytest.raises(Exception):
            SimRankService(
                graph, CFG, initial_scores=scores, degraded_policy="panic"
            )


class TestRejectPolicy:
    def test_read_only_mode_after_pool_loss(self, workload):
        graph, scores, updates = workload
        service = _poisoned_service(
            graph, scores, degraded_policy="reject"
        )
        try:
            pinned = service.snapshot()
            frozen = pinned.similarities()
            frozen_top = pinned.top_k(5)
            service.submit_many(updates)
            # Pipelined dispatch: drain() may return before the poison
            # batch's crash is collected at the next sync point.
            try:
                service.drain()
            except Exception:
                pass
            view = service.snapshot()  # detection happens here at latest
            assert service.degraded
            assert "Poison" in service.degraded_reason
            # Mutations are refused with the typed error...
            with pytest.raises(DegradedModeError):
                service.submit(EdgeUpdate.insert(0, 5))
            with pytest.raises(DegradedModeError):
                service.add_node()
            # ...but every read path keeps serving.
            assert view is not None
            assert np.isfinite(view.similarity(1, 2))
            assert len(service.top_k(5)) == 5
            assert np.isfinite(service.similarity(3, 4))
            # The reader pinned before the drain never saw a torn byte.
            assert np.array_equal(pinned.similarities(), frozen)
            assert pinned.top_k(5) == frozen_top
            # Observability: quarantine + degraded gauges are exposed.
            report = service.metrics_report()
            assert report["degraded"]["degraded"] is True
            assert report["degraded"]["policy"] == "reject"
            executor = report["executor"]
            assert executor["supervisor"]["quarantined_batches"] == 1
        finally:
            service.close()

    def test_degraded_view_is_consistent_not_torn(self, workload):
        """The degraded view is rebuilt from base + journal, never the
        (possibly torn) parent mirror of a mid-drain pool."""
        graph, scores, updates = workload
        service = _poisoned_service(
            graph, scores, at_command=2, degraded_policy="reject"
        )
        try:
            service.submit_many(updates)
            try:
                service.drain()
            except Exception:
                pass
            view = service.snapshot()
            assert service.degraded  # the fault actually fired
            matrix = view.similarities()
            # A consistent SimRank matrix is symmetric with unit diagonal
            # scaled by (1 - C); a torn cross-worker mirror is not.
            np.testing.assert_allclose(matrix, matrix.T, atol=1e-12)
        finally:
            service.close()


class TestQueuePolicy:
    def test_submits_queue_while_drains_refuse(self, workload):
        graph, scores, updates = workload
        service = _poisoned_service(
            graph, scores, at_command=2, degraded_policy="queue"
        )
        try:
            service.submit_many(updates)
            try:
                service.drain()
            except Exception:
                pass
            service.snapshot()
            assert service.degraded
            before = service.pending
            service.submit(EdgeUpdate.insert(1, 7))  # queued, not refused
            assert service.pending == before + 1
            with pytest.raises(DegradedModeError):
                service.drain()
        finally:
            service.close()


class TestRebuildPolicy:
    def test_failover_is_bit_identical_and_writable(self, workload):
        graph, scores, updates = workload
        oracle = _oracle(graph, scores, updates)
        service = _poisoned_service(
            graph, scores, degraded_policy="rebuild"
        )
        try:
            service.snapshot()  # advances the command clock past arming
            service.submit_many(updates)
            service.drain()
            sim = service.similarity(1, 2)  # sync point: detect + failover
            assert service.failovers == 1
            assert not service.degraded
            assert service.executor == "inproc"
            final = service.engine.similarities()
            assert np.array_equal(final, oracle)
            assert sim == oracle[1, 2]
            # Writes resume on the rebuilt in-process store.
            edges = set(service.engine.graph.edges())
            fresh = next(
                (a, b)
                for a in range(graph.num_nodes)
                for b in range(graph.num_nodes)
                if a != b and (a, b) not in edges
            )
            service.submit(EdgeUpdate.insert(*fresh))
            service.drain()
            report = service.metrics_report()["degraded"]
            assert report["failovers"] == 1
            assert report["degraded"] is False
        finally:
            service.close()


class TestBackgroundWriterDegradation:
    def test_rebuild_failover_inside_writer_thread(self, workload):
        graph, scores, updates = workload
        oracle = _oracle(graph, scores, updates)
        service = _poisoned_service(
            graph,
            scores,
            at_command=2,
            degraded_policy="rebuild",
            writer="background",
            drain_interval=0.01,
        )
        try:
            service.submit_many(updates)
            assert service.flush(timeout=60)
            assert service.failovers == 1
            assert not service.degraded
            with service.writer.apply_lock:
                final = service.engine.similarities()
            assert np.array_equal(final, oracle)
            report = service.writer.report()
            assert report["writer_paused"] is False
            assert report["fatal"] is False
        finally:
            service.close()

    def test_reject_pauses_writer_fatally(self, workload):
        graph, scores, updates = workload
        service = _poisoned_service(
            graph,
            scores,
            at_command=2,
            degraded_policy="reject",
            writer="background",
            drain_interval=0.01,
        )
        try:
            pre = service.snapshot()
            pre_value = pre.similarity(1, 2)
            service.submit_many(updates)
            with pytest.raises(Exception):
                service.flush(timeout=60)
            deadline = time.monotonic() + 10
            while not service.degraded and time.monotonic() < deadline:
                time.sleep(0.02)
            assert service.degraded
            writer = service.writer
            assert writer.fatal
            assert writer.paused
            # A fatal pause never auto-resumes: the batch would double
            # apply on a store whose graph already advanced.
            assert writer.stats.resume_attempts == 0
            # Readers stay on the last published (pre-drain) view.
            assert service.snapshot().similarity(1, 2) == pre_value
            with pytest.raises(DegradedModeError):
                service.add_node()
            report = service.metrics_report()
            assert report["writer"]["fatal"] is True
            assert report["writer"]["writer_paused"] is True
        finally:
            service.close()


class TestWriterAutoResume:
    def test_transient_error_resumes_with_backoff(self):
        """A transient drain failure requeues the batch and auto-resumes
        on a capped exponential backoff once the queue is repaired."""
        graph = erdos_renyi_digraph(20, 0.1, seed=61)
        service = SimRankService(
            graph, CFG, writer="background", drain_interval=0.001
        )
        try:
            existing = next(iter(graph.edges()))
            service.submit(EdgeUpdate.insert(*existing))  # invalid: exists
            with pytest.raises(Exception):
                service.flush(timeout=30)
            writer = service.writer
            assert writer.paused
            assert not writer.fatal
            assert service.pending == 1  # requeued losslessly
            # Repair the queue: the inverse update cancels the poison
            # insert, so the retried drain is a no-op that succeeds.
            writer.submit(EdgeUpdate.delete(*existing))
            deadline = time.monotonic() + 20
            while writer.paused and time.monotonic() < deadline:
                time.sleep(0.05)
            assert not writer.paused
            assert writer.stats.resume_attempts >= 1
            assert service.flush(timeout=30)
            report = writer.report()
            assert report["resume_attempts"] >= 1
            assert report["writer_paused"] is False
        finally:
            service.stop_background_writer(drain=False)
            service.close()
