"""Tests for the batch SimRank algorithms (repro.simrank.*)."""

import networkx as nx
import numpy as np
import pytest

from repro import SimRankConfig
from repro.exceptions import ConvergenceError
from repro.graph.digraph import DynamicDiGraph
from repro.simrank.base import check_similarity_matrix
from repro.simrank.exact import exact_simrank, truncation_error_bound
from repro.simrank.matrix import batch_simrank, matrix_simrank
from repro.simrank.naive import naive_simrank, naive_simrank_single_pair
from repro.simrank.partial_sums import (
    partial_sums_iteration_cost,
    partial_sums_simrank,
)


class TestNaiveSimRank:
    def test_diagonal_pinned_to_one(self, random_graph, config):
        scores = naive_simrank(random_graph, config)
        np.testing.assert_allclose(np.diag(scores), 1.0)

    def test_matches_networkx(self, cyclic_graph):
        config = SimRankConfig(damping=0.9, iterations=40)
        ours = naive_simrank(cyclic_graph, config)
        theirs = nx.simrank_similarity(
            cyclic_graph.to_networkx(),
            importance_factor=config.damping,
            max_iterations=100,
            tolerance=1e-12,
        )
        for a in range(cyclic_graph.num_nodes):
            for b in range(cyclic_graph.num_nodes):
                assert ours[a, b] == pytest.approx(theirs[a][b], abs=1e-5)

    def test_diamond_closed_form(self, diamond_graph):
        # s(1,2) = C exactly (common single in-neighbor 0, s(0,0)=1).
        config = SimRankConfig(damping=0.8, iterations=20)
        scores = naive_simrank(diamond_graph, config)
        assert scores[1, 2] == pytest.approx(0.8)
        # s(0, 3) = 0: node 0 has no in-links.
        assert scores[0, 3] == 0.0

    def test_symmetric(self, random_graph, config):
        scores = naive_simrank(random_graph, config)
        np.testing.assert_allclose(scores, scores.T, atol=1e-12)

    def test_single_pair_helper(self, diamond_graph):
        config = SimRankConfig(damping=0.8, iterations=20)
        assert naive_simrank_single_pair(
            diamond_graph, 1, 2, config
        ) == pytest.approx(0.8)


class TestPartialSumsSimRank:
    def test_identical_to_naive_every_graph(self, config):
        for seed in (1, 2, 3):
            from repro.graph.generators import erdos_renyi_digraph

            graph = erdos_renyi_digraph(25, 0.12, seed=seed)
            np.testing.assert_allclose(
                partial_sums_simrank(graph, config),
                naive_simrank(graph, config),
                atol=1e-10,
            )

    def test_iteration_cost_below_naive(self, citation_graph):
        n = citation_graph.num_nodes
        d = citation_graph.average_in_degree()
        partial_cost = partial_sums_iteration_cost(citation_graph)
        naive_cost = (d * n) ** 2 / n * n  # O(d^2 n^2) shaped
        assert partial_cost == 2 * citation_graph.num_edges * n
        assert partial_cost < naive_cost


class TestMatrixSimRank:
    def test_fixed_point_residual_within_bound(self, cyclic_graph, config):
        scores = matrix_simrank(cyclic_graph, config)
        truth = exact_simrank(cyclic_graph, config)
        bound = truncation_error_bound(config)
        assert np.max(np.abs(scores - truth)) <= bound

    def test_diagonal_at_least_one_minus_damping(self, random_graph, config):
        scores = matrix_simrank(random_graph, config)
        assert np.min(np.diag(scores)) >= (1 - config.damping) - 1e-12

    def test_invariants(self, random_graph, config):
        check_similarity_matrix(matrix_simrank(random_graph, config), config.damping)

    def test_accepts_prebuilt_q(self, diamond_graph, config):
        from repro.graph.transition import backward_transition_matrix

        q = backward_transition_matrix(diamond_graph)
        np.testing.assert_allclose(
            matrix_simrank(q, config), matrix_simrank(diamond_graph, config)
        )

    def test_batch_alias(self, diamond_graph, config):
        np.testing.assert_array_equal(
            batch_simrank(diamond_graph, config),
            matrix_simrank(diamond_graph, config),
        )

    def test_tolerance_early_exit(self, diamond_graph):
        # The diamond is a DAG of depth 2: converges after 3 iterations.
        config = SimRankConfig(damping=0.6, iterations=50)
        scores = matrix_simrank(diamond_graph, config, tolerance=1e-14)
        truth = exact_simrank(diamond_graph, config)
        np.testing.assert_allclose(scores, truth, atol=1e-12)

    def test_tolerance_failure_raises(self, cyclic_graph):
        config = SimRankConfig(damping=0.9, iterations=2)
        with pytest.raises(ConvergenceError):
            matrix_simrank(cyclic_graph, config, tolerance=1e-12)

    def test_empty_graph(self, config):
        scores = matrix_simrank(DynamicDiGraph(3), config)
        np.testing.assert_allclose(scores, (1 - config.damping) * np.eye(3))


class TestExactSimRank:
    def test_satisfies_matrix_equation(self, cyclic_graph, config):
        from repro.graph.transition import backward_transition_matrix

        q = backward_transition_matrix(cyclic_graph).toarray()
        s = exact_simrank(cyclic_graph, config)
        residual = s - (
            config.damping * q @ s @ q.T
            + (1 - config.damping) * np.eye(len(s))
        )
        assert np.max(np.abs(residual)) < 1e-12

    def test_scores_in_unit_interval(self, random_graph, config):
        s = exact_simrank(random_graph, config)
        assert s.min() >= -1e-12
        assert s.max() <= 1.0 + 1e-12

    def test_truncation_bound_formula(self):
        config = SimRankConfig(damping=0.6, iterations=15)
        assert truncation_error_bound(config) == pytest.approx(
            0.6**16 / 0.4
        )


class TestConventionDifference:
    def test_matrix_form_diagonal_below_iterative_form(self, cyclic_graph, config):
        """Documented convention gap: matrix form has diag <= 1."""
        matrix_scores = matrix_simrank(cyclic_graph, config)
        naive_scores = naive_simrank(cyclic_graph, config)
        assert np.all(np.diag(matrix_scores) <= np.diag(naive_scores) + 1e-12)
        assert np.min(np.diag(matrix_scores)) < 1.0
