"""Tests for repro.incremental.inc_svd (the Li et al. baseline, Sec. IV)."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import random_insertions
from repro.graph.transition import backward_transition_matrix
from repro.graph.updates import EdgeUpdate
from repro.incremental.inc_svd import IncSVDSimRank, low_rank_simrank_scores
from repro.linalg.svd_tools import lossless_rank, truncated_svd
from repro.metrics.error import max_abs_error
from repro.simrank.exact import exact_simrank


class TestLowRankScores:
    def test_exact_for_lossless_factors(self, cyclic_graph, config):
        q = backward_transition_matrix(cyclic_graph)
        factors = truncated_svd(q, lossless_rank(q))
        scores = low_rank_simrank_scores(factors, config.damping)
        truth = exact_simrank(cyclic_graph, config)
        np.testing.assert_allclose(scores, truth, atol=1e-10)

    def test_empty_rank_gives_diagonal(self):
        from repro.linalg.svd_tools import SVDFactors

        factors = SVDFactors(
            u=np.zeros((3, 0)), sigma=np.zeros(0), v=np.zeros((3, 0))
        )
        scores = low_rank_simrank_scores(factors, 0.6)
        np.testing.assert_allclose(scores, 0.4 * np.eye(3))


class TestPaperExample3:
    """The paper's 2x2 counterexample, end to end."""

    def setup_method(self):
        # Q = [[0, 1], [0, 0]]: graph with single edge 1 -> 0.
        self.graph = DynamicDiGraph.from_edges(2, [(1, 0)])

    def test_factor_update_misses_eigen_information(self):
        session = IncSVDSimRank(self.graph, rank=1)
        # Insert 0 -> 1: ΔQ = [[0, 0], [1, 0]].
        session.apply(EdgeUpdate.insert(0, 1))
        # Paper: ||Q̃ − Ũ·Σ̃·Ṽᵀ||₂ = 1 exactly.
        assert session.reconstruction_residual() == pytest.approx(1.0, abs=1e-10)

    def test_maintained_factors_reconstruct_old_q_not_new(self):
        session = IncSVDSimRank(self.graph, rank=1)
        session.apply(EdgeUpdate.insert(0, 1))
        reconstructed = session.factors.reconstruct()
        # Paper Example 3: Ũ·Σ̃·Ṽᵀ = [[0,1],[0,0]] != Q̃ = [[0,1],[1,0]].
        np.testing.assert_allclose(
            reconstructed, [[0.0, 1.0], [0.0, 0.0]], atol=1e-10
        )


class TestIncSVDSession:
    def test_initial_scores_exact_at_lossless_rank(self, cyclic_graph, config):
        q = backward_transition_matrix(cyclic_graph)
        session = IncSVDSimRank(
            cyclic_graph, rank=lossless_rank(q), config=config
        )
        truth = exact_simrank(cyclic_graph, config)
        np.testing.assert_allclose(session.scores(), truth, atol=1e-10)

    def test_update_drift_vs_exact(self, citation_graph, config):
        """After updates Inc-SVD deviates measurably from the truth."""
        q = backward_transition_matrix(citation_graph)
        session = IncSVDSimRank(
            citation_graph, rank=lossless_rank(q), config=config
        )
        batch = random_insertions(citation_graph, 8, seed=5)
        session.apply_batch(batch)
        truth = exact_simrank(batch.applied(citation_graph), config)
        assert max_abs_error(session.scores(), truth) > 1e-4

    def test_low_rank_worse_than_lossless(self, citation_graph, config):
        batch = random_insertions(citation_graph, 5, seed=6)
        truth = exact_simrank(batch.applied(citation_graph), config)
        q = backward_transition_matrix(citation_graph)
        errors = {}
        for rank in (3, lossless_rank(q)):
            session = IncSVDSimRank(citation_graph, rank=rank, config=config)
            session.apply_batch(batch)
            errors[rank] = max_abs_error(session.scores(), truth)
        assert errors[3] >= errors[lossless_rank(q)]

    def test_graph_maintained_exactly(self, cyclic_graph, config):
        session = IncSVDSimRank(cyclic_graph, rank=3, config=config)
        update = EdgeUpdate.insert(4, 2)
        session.apply(update)
        assert session.graph.has_edge(4, 2)
        assert session.updates_applied == 1
        assert not cyclic_graph.has_edge(4, 2)  # caller's graph untouched

    def test_batch_processing(self, random_graph, config):
        session = IncSVDSimRank(random_graph, rank=5, config=config)
        batch = random_insertions(random_graph, 4, seed=7)
        session.apply_batch(batch)
        assert session.updates_applied == 4

    def test_rank_validation(self, cyclic_graph):
        with pytest.raises(DimensionError):
            IncSVDSimRank(cyclic_graph, rank=0)

    def test_intermediate_bytes_grows_with_rank(self, random_graph):
        small = IncSVDSimRank(random_graph, rank=2).intermediate_bytes()
        large = IncSVDSimRank(random_graph, rank=10).intermediate_bytes()
        assert large > small
