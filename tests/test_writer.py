"""Tests for repro.serving.writer (background drain loop + backpressure).

The contract under test:

* **threaded stress / no torn reads** — N reader threads pin snapshots
  and query them while the background writer drains 200+ updates; every
  pinned view must stay bit-identical to its pin-time matrix, versions
  must be monotone, and each published view must be internally
  consistent (symmetric, matching its own re-reads).
* **backpressure policies** — ``block`` waits for space, ``error``
  raises :class:`BackpressureError`, ``drop-coalesce`` accepts only
  coalescing updates at capacity.
* **equivalence** — the final state after background draining matches
  the exact batch recomputation within the shared truncation bound.
"""

import threading
import time

import numpy as np
import pytest

from repro import SimRankConfig
from repro.exceptions import BackpressureError, ConfigError
from repro.graph.generators import erdos_renyi_digraph
from repro.graph.updates import EdgeUpdate, UpdateBatch
from repro.serving import BackgroundWriter, SimRankService
from repro.simrank.exact import truncation_error_bound
from repro.simrank.matrix import matrix_simrank

from _streams import random_update_stream as _random_stream


@pytest.fixture
def config():
    return SimRankConfig(damping=0.6, iterations=12)


class TestLifecycle:
    def test_constructor_starts_and_close_stops(self, config):
        graph = erdos_renyi_digraph(20, 0.1, seed=1)
        service = SimRankService(graph, config, writer="background")
        assert service.background
        assert service.writer.running
        assert service.snapshot() is not None
        service.close()
        assert not service.background

    def test_context_manager(self, config):
        graph = erdos_renyi_digraph(20, 0.1, seed=1)
        with SimRankService(graph, config, writer="background") as service:
            service.submit_many(_random_stream(graph, 10, seed=2))
            assert service.flush(timeout=30)
            assert service.version >= 1
        assert not service.background

    def test_drain_is_writer_owned_in_background_mode(self, config):
        graph = erdos_renyi_digraph(15, 0.1, seed=3)
        with SimRankService(graph, config, writer="background") as service:
            with pytest.raises(ConfigError):
                service.drain()

    def test_unknown_modes_rejected(self, config):
        graph = erdos_renyi_digraph(10, 0.1, seed=3)
        with pytest.raises(ConfigError):
            SimRankService(graph, config, writer="async")
        with pytest.raises(ConfigError):
            SimRankService(
                graph, config, writer="background", backpressure="shed"
            )

    def test_double_start_rejected(self, config):
        graph = erdos_renyi_digraph(10, 0.1, seed=3)
        with SimRankService(graph, config, writer="background") as service:
            with pytest.raises(ConfigError):
                service.start_background_writer()

    def test_writer_restarts_after_stop(self, config):
        graph = erdos_renyi_digraph(20, 0.1, seed=4)
        service = SimRankService(graph, config)
        writer = BackgroundWriter(service.engine, service.scheduler)
        writer.start()
        writer.stop()
        # A stopped writer can be started again and actually drains.
        writer.start()
        try:
            assert writer.running
            writer.submit_many(_random_stream(graph, 5, seed=6))
            assert writer.flush(timeout=30)
            assert service.engine.version >= 1
        finally:
            writer.stop()

    def test_stop_drains_leftovers(self, config):
        graph = erdos_renyi_digraph(25, 0.1, seed=4)
        service = SimRankService(
            graph, config, writer="background", drain_interval=5.0
        )
        # Long interval: nothing drains until stop() forces it.
        service.submit_many(_random_stream(graph, 12, seed=5))
        service.close()
        assert service.engine.version >= 1
        assert len(service.scheduler) == 0


class TestThreadedStress:
    def test_readers_stay_bit_stable_under_200_update_drain(self, config):
        """N reader threads pin/query while the writer drains 200+ updates."""
        graph = erdos_renyi_digraph(60, 0.06, seed=11)
        stream = _random_stream(graph, 220, seed=12)
        service = SimRankService(
            graph,
            config,
            shard_rows=16,
            writer="background",
            drain_interval=0.001,
        )
        errors = []
        stop = threading.Event()

        def reader(seed):
            rng = np.random.default_rng(seed)
            last_version = -1
            try:
                while not stop.is_set():
                    view = service.snapshot()
                    # Published versions may only move forward.
                    if view.version < last_version:
                        raise AssertionError(
                            f"version went backwards: {view.version} < "
                            f"{last_version}"
                        )
                    last_version = view.version
                    pinned = view.similarities()
                    # Internal consistency: a published view is a real
                    # version — symmetric, and stable across re-reads.
                    if not np.allclose(pinned, pinned.T, atol=1e-12):
                        raise AssertionError("torn read: asymmetric matrix")
                    a = int(rng.integers(view.num_nodes))
                    b = int(rng.integers(view.num_nodes))
                    if view.similarity(a, b) != pinned[a, b]:
                        raise AssertionError("torn read: entry vs matrix")
                    # Bit-stability: the pin never moves, even after the
                    # writer has advanced past it.
                    time.sleep(0.002)
                    if not np.array_equal(view.similarities(), pinned):
                        raise AssertionError("pinned view mutated")
            except Exception as exc:  # propagate to the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=reader, args=(100 + i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        # Writer side: feed the whole stream in chunks while readers run.
        for begin in range(0, len(stream), 20):
            service.submit_many(stream[begin : begin + 20])
            time.sleep(0.001)
        assert service.flush(timeout=60)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        service.close()
        assert not errors, errors[0]
        assert service.writer is None
        stats = service.scheduler.stats
        assert stats.drained_updates > 0
        # The full stream really went through the engine.
        expected = UpdateBatch(stream).applied(graph)
        assert set(service.engine.graph.edges()) == set(expected.edges())

    def test_final_scores_match_batch_truth(self, config):
        graph = erdos_renyi_digraph(40, 0.07, seed=21)
        stream = _random_stream(graph, 60, seed=22)
        config = SimRankConfig(damping=0.6, iterations=25)
        with SimRankService(
            graph,
            config,
            shard_rows=8,
            writer="background",
            drain_interval=0.001,
        ) as service:
            for begin in range(0, len(stream), 10):
                service.submit_many(stream[begin : begin + 10])
                time.sleep(0.002)
            assert service.flush(timeout=60)
            truth = matrix_simrank(UpdateBatch(stream).applied(graph), config)
            bound = truncation_error_bound(config)
            np.testing.assert_allclose(
                service.engine.similarities(), truth, atol=4 * bound
            )


class TestBackpressure:
    def test_error_policy_raises_at_capacity(self, config):
        graph = erdos_renyi_digraph(30, 0.05, seed=31)
        service = SimRankService(
            graph,
            config,
            writer="background",
            drain_interval=60.0,  # effectively: nothing drains on its own
            max_pending=5,
            backpressure="error",
        )
        try:
            stream = _random_stream(graph, 10, seed=32)
            for update in stream[:5]:
                service.submit(update)
            with pytest.raises(BackpressureError):
                service.submit(stream[5])
            assert service.writer.stats.rejected_updates == 1
        finally:
            service.close()

    def test_drop_coalesce_accepts_only_coalescing_updates(self, config):
        graph = erdos_renyi_digraph(30, 0.05, seed=41)
        service = SimRankService(
            graph,
            config,
            writer="background",
            drain_interval=60.0,
            max_pending=3,
            backpressure="drop-coalesce",
        )
        try:
            writer = service.writer
            # Fill the queue with three distinct targets.
            assert writer.submit(EdgeUpdate.insert(1, 7))
            assert writer.submit(EdgeUpdate.insert(2, 8))
            assert writer.submit(EdgeUpdate.insert(3, 9))
            # At capacity: a new target row is dropped...
            assert not writer.submit(EdgeUpdate.insert(4, 10))
            assert writer.stats.dropped_updates == 1
            # ...but same-target coalescing and cancellation still land.
            assert writer.submit(EdgeUpdate.insert(5, 7))
            assert writer.submit(EdgeUpdate.delete(1, 7))  # cancels pending
            assert service.pending == 3
        finally:
            service.close()

    def test_block_policy_waits_for_drain(self, config):
        graph = erdos_renyi_digraph(40, 0.06, seed=51)
        service = SimRankService(
            graph,
            config,
            writer="background",
            drain_interval=0.001,
            max_pending=4,
            backpressure="block",
        )
        try:
            stream = _random_stream(graph, 40, seed=52)
            # Submitting far more than max_pending must succeed (blocking
            # submitters ride out drains) and lose nothing.
            service.submit_many(stream)
            assert service.flush(timeout=60)
            expected = UpdateBatch(stream).applied(graph)
            assert set(service.engine.graph.edges()) == set(expected.edges())
            assert service.writer.stats.max_queue_depth <= 4
        finally:
            service.close()


class TestErrorHandling:
    def test_poison_batch_pauses_and_requeues(self, config):
        graph = erdos_renyi_digraph(20, 0.1, seed=61)
        service = SimRankService(
            graph, config, writer="background", drain_interval=0.001
        )
        try:
            existing = next(iter(graph.edges()))
            service.submit(EdgeUpdate.insert(*existing))  # invalid: exists
            with pytest.raises(Exception):
                service.flush(timeout=30)
            writer = service.writer
            assert writer.last_error is not None
            assert writer.stats.errors == 1
            # Nothing lost: the poison update is back in the queue, and
            # the loop is paused rather than spinning on it.
            assert service.pending == 1
            drains_before = writer.stats.drains
            time.sleep(0.05)
            assert writer.stats.drains == drains_before
            # Repair the queue (cancel the poison insert) and resume.
            writer.submit(EdgeUpdate.delete(*existing))
            writer.clear_error()
            assert service.flush(timeout=30)
            assert service.pending == 0
        finally:
            service.stop_background_writer(drain=False)

    def test_submit_after_stop_rejected(self, config):
        graph = erdos_renyi_digraph(15, 0.1, seed=71)
        service = SimRankService(graph, config, writer="background")
        writer = service.writer
        service.close()
        with pytest.raises(ConfigError):
            writer.submit(EdgeUpdate.insert(0, 1))


class TestWriterUnit:
    def test_invalid_parameters(self, config):
        graph = erdos_renyi_digraph(10, 0.1, seed=81)
        service = SimRankService(graph, config)
        with pytest.raises(ConfigError):
            BackgroundWriter(
                service.engine, service.scheduler, policy="backoff"
            )
        with pytest.raises(ConfigError):
            BackgroundWriter(
                service.engine, service.scheduler, drain_interval=0.0
            )
        with pytest.raises(ConfigError):
            BackgroundWriter(
                service.engine, service.scheduler, max_pending=0
            )

    def test_report_shape(self, config):
        graph = erdos_renyi_digraph(15, 0.1, seed=91)
        with SimRankService(graph, config, writer="background") as service:
            service.submit_many(_random_stream(graph, 8, seed=92))
            assert service.flush(timeout=30)
            report = service.writer.report()
            for key in (
                "policy",
                "queue_depth",
                "drains",
                "drained_updates",
                "max_queue_depth",
                "publishes",
                "mean_apply_seconds",
            ):
                assert key in report
            metrics = service.metrics_report()
            assert metrics["writer"]["drains"] >= 1
            assert metrics["queue_depth"] == 0

    def test_add_node_republishes(self, config):
        graph = erdos_renyi_digraph(12, 0.15, seed=93)
        with SimRankService(
            graph, config, shard_rows=4, writer="background"
        ) as service:
            before = service.snapshot()
            node = service.add_node()
            after = service.snapshot()
            assert node == 12
            assert before.num_nodes == 12
            assert after.num_nodes == 13
            assert after.similarity(node, node) == pytest.approx(
                1.0 - config.damping
            )
