"""Tests for repro.telemetry: registry, tracing, flight, exposition.

The contracts the telemetry subsystem promises:

* **typed registry** — idempotent factories, thread-safe instruments,
  callback gauges that re-bind to the latest owner;
* **no-op mode** — a disabled registry hands out shared null
  singletons whose hot-path methods allocate *nothing* (asserted with
  ``tracemalloc``);
* **deterministic sampling** — the CRC32 sampler gives every process
  the same keep/drop verdict for a given trace id, and explicit ids
  are always kept;
* **exposition round-trip** — ``render_prometheus`` output parses back
  through the minimal parser and survives ``validate_scrape``;
* **flight recorder** — events ring-buffer, dumps are well-formed JSON
  files, I/O failure is absorbed;
* **report compatibility** — ``SimRankService.metrics_report()`` keeps
  every pre-telemetry key (names asserted exactly) and only *adds* the
  ``telemetry`` section; the front-door stats dicts rendered through
  :class:`GaugeGroup` keep their historical key sets.
"""

from __future__ import annotations

import json
import os
import tracemalloc
import uuid

import numpy as np
import pytest

from repro import SimRankConfig
from repro.graph.generators import erdos_renyi_digraph
from repro.graph.updates import EdgeUpdate
from repro.serving import ServiceConfig, SimRankService, TelemetryConfig
from repro.simrank.matrix import matrix_simrank
from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_TELEMETRY,
    FlightRecorder,
    GaugeGroup,
    MetricRegistry,
    Telemetry,
    Tracer,
    parse_prometheus_text,
    render_prometheus,
    trace_sampled,
    validate_scrape,
)

CFG = SimRankConfig(damping=0.6, iterations=7)


@pytest.fixture(scope="module")
def workload():
    graph = erdos_renyi_digraph(30, 0.1, seed=11)
    scores = matrix_simrank(graph, CFG)
    return graph, scores


# ------------------------------------------------------------------ #
# Registry
# ------------------------------------------------------------------ #


class TestRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricRegistry()
        counter = registry.counter("c", help="a counter")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        gauge = registry.gauge("g")
        gauge.set(7.0)
        assert gauge.value == 7.0
        hist = registry.histogram("h")
        hist.observe(0.002)
        hist.observe(0.003)
        assert hist.count == 2
        assert hist.sum == pytest.approx(0.005)

    def test_factories_idempotent_by_name(self):
        registry = MetricRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")
        names = [i.name for i in registry.collect()]
        assert names == sorted(names) == ["x", "y", "z"]

    def test_callback_gauge_rebinds_to_latest_owner(self):
        registry = MetricRegistry()
        registry.gauge("depth", fn=lambda: 1.0)
        assert registry.gauge("depth").value == 1.0
        # A restarted owner re-registers under the same name; the gauge
        # must read the live object, not the dead one.
        registry.gauge("depth", fn=lambda: 2.0)
        assert registry.gauge("depth").value == 2.0

    def test_callback_failure_reads_nan_not_raises(self):
        registry = MetricRegistry()

        def broken():
            raise RuntimeError("owner is gone")

        gauge = registry.gauge("dead", fn=broken)
        assert np.isnan(gauge.value)

    def test_histogram_percentiles_bracket_the_data(self):
        hist = MetricRegistry().histogram("lat")
        for value in np.linspace(0.001, 0.1, 500):
            hist.observe(float(value))
        digest = hist.summary()
        assert digest["count"] == 500
        # Interpolated percentiles are bucket-approximate; they must be
        # ordered and inside the observed range.
        assert 0.001 <= digest["p50"] <= digest["p95"] <= digest["p99"]
        assert digest["p99"] <= digest["max"] == pytest.approx(0.1)
        assert digest["p50"] == pytest.approx(0.05, rel=0.6)

    def test_disabled_registry_hands_out_shared_nulls(self):
        registry = MetricRegistry(enabled=False)
        counter = registry.counter("a")
        assert counter is registry.counter("b")
        counter.inc()
        assert counter.value == 0.0
        hist = registry.histogram("h")
        hist.observe(1.0)
        assert hist.count == 0
        assert registry.collect() == []

    def test_noop_hot_path_allocates_nothing(self):
        registry = NULL_TELEMETRY.registry
        counter = registry.counter("c")
        gauge = registry.gauge("g")
        hist = registry.histogram("h")
        tracer = NULL_TELEMETRY.tracer
        flight = NULL_TELEMETRY.flight

        def hot_loop():
            for _ in range(1000):
                counter.inc()
                gauge.set(1.0)
                hist.observe(0.5)
                tracer.record("span", None, 0.5)
                flight.record("event")

        hot_loop()  # warm up code objects / caches
        tracemalloc.start()
        try:
            before, _ = tracemalloc.get_traced_memory()
            hot_loop()
            after, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert after - before == 0


class TestGaugeGroup:
    def test_report_matches_registry_gauges(self):
        registry = MetricRegistry()

        class Stats:
            hits = 3
            misses = 1

        stats = Stats()
        group = GaugeGroup(registry, "repro_test")
        group.expose("hits", lambda: stats.hits)
        group.expose("misses", lambda: stats.misses)
        assert group.report() == {"hits": 3, "misses": 1}
        assert registry.get("repro_test_hits").value == 3
        stats.hits = 9  # one set of readers backs both surfaces
        assert group.report()["hits"] == 9
        assert registry.get("repro_test_hits").value == 9


# ------------------------------------------------------------------ #
# Tracing
# ------------------------------------------------------------------ #


class TestSampling:
    def test_deterministic_and_boundary_rates(self):
        trace_id = "abc123"
        assert trace_sampled(trace_id, 1.0)
        assert not trace_sampled(trace_id, 0.0)
        verdicts = {trace_sampled(trace_id, 0.5) for _ in range(10)}
        assert len(verdicts) == 1  # same id, same verdict, every time

    def test_sample_rate_is_roughly_honored(self):
        kept = sum(
            trace_sampled(uuid.uuid4().hex, 0.25) for _ in range(2000)
        )
        assert 0.15 < kept / 2000 < 0.35

    def test_explicit_ids_bypass_sampling(self):
        tracer = Tracer(sample_rate=0.0)
        assert tracer.admit("user-named-trace") == "user-named-trace"
        assert tracer.sampled("user-named-trace")
        # Minted ids at rate 0.0 are dropped entirely.
        assert tracer.admit(None) is None


class TestTracer:
    def test_span_and_record_export(self):
        tracer = Tracer()
        with tracer.span("work", "t1", stage="test"):
            pass
        tracer.record("apply", "t1", 0.25, worker=3)
        tracer.record("other", "t2", 0.1)
        spans = tracer.export("t1")
        assert [span["name"] for span in spans] == ["work", "apply"]
        assert spans[1]["duration_ms"] == pytest.approx(250.0)
        assert spans[1]["attrs"] == {"worker": 3, "plans": 1} or spans[1][
            "attrs"
        ] == {"worker": 3}
        assert len(tracer.export()) == 3

    def test_ring_is_bounded(self):
        tracer = Tracer(capacity=4)
        for index in range(10):
            tracer.record("s", f"t{index}", 0.001)
        assert len(tracer.export()) == 4
        assert tracer.spans_recorded == 10
        assert tracer.spans_dropped == 6

    def test_active_baton(self):
        tracer = Tracer()
        assert tracer.active() is None
        tracer.set_active("t9")
        assert tracer.active() == "t9"
        tracer.set_active(None)
        assert tracer.active() is None


# ------------------------------------------------------------------ #
# Prometheus exposition
# ------------------------------------------------------------------ #


class TestPrometheus:
    def test_render_parse_validate_round_trip(self):
        registry = MetricRegistry()
        registry.counter("repro_reqs", help="requests").inc(5)
        registry.gauge("repro_depth", fn=lambda: 3.0)
        hist = registry.histogram("repro_lat", help="latency")
        for value in (0.0002, 0.004, 0.004, 2.0):
            hist.observe(value)
        text = render_prometheus(registry)
        families = parse_prometheus_text(text)
        assert families["repro_reqs"]["type"] == "counter"
        assert families["repro_reqs"]["samples"][("repro_reqs", ())] == 5.0
        assert families["repro_depth"]["samples"][("repro_depth", ())] == 3.0
        lat = families["repro_lat"]
        assert lat["type"] == "histogram"
        assert lat["samples"][("repro_lat_count", ())] == 4.0
        assert lat["samples"][("repro_lat_sum", ())] == pytest.approx(
            2.0082
        )
        # Buckets are cumulative and the +Inf bucket equals the count.
        inf = lat["samples"][("repro_lat_bucket", (("le", "+Inf"),))]
        assert inf == 4.0
        summary = validate_scrape(text)
        assert summary == {"families": 3, "histograms": 1}

    def test_bucket_counts_are_cumulative(self):
        registry = MetricRegistry()
        hist = registry.histogram("h", buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.05, 5.0):
            hist.observe(value)
        samples = parse_prometheus_text(render_prometheus(registry))["h"][
            "samples"
        ]
        by_bound = {
            labels[0][1]: value
            for (name, labels), value in samples.items()
            if name == "h_bucket"
        }
        assert by_bound["0.001"] == 1.0
        assert by_bound["0.01"] == 2.0
        assert by_bound["0.1"] == 3.0
        assert by_bound["+Inf"] == 4.0

    def test_unparseable_scrape_fails_loudly(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("this is { not prometheus")


# ------------------------------------------------------------------ #
# Flight recorder
# ------------------------------------------------------------------ #


class TestFlightRecorder:
    def test_dump_file_format(self, tmp_path):
        flight = FlightRecorder(capacity=8, directory=str(tmp_path))
        for index in range(12):  # overflow the ring
            flight.record("tick", index=index)
        path = flight.dump("unit-test")
        assert path is not None and os.path.exists(path)
        assert os.path.basename(path).startswith("flight-")
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["reason"] == "unit-test"
        assert payload["pid"] == os.getpid()
        assert len(payload["events"]) == 8  # bounded ring
        assert payload["events"][-1] == {
            "time": payload["events"][-1]["time"],
            "kind": "tick",
            "fields": {"index": 11},
        }
        second = flight.dump("unit-test")
        assert second != path  # sequence number advances
        assert flight.report()["dumps"] == 2

    def test_unwritable_directory_is_absorbed(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file, not a directory")
        flight = FlightRecorder(directory=str(target))
        flight.record("tick")
        assert flight.dump("unit-test") is None
        assert flight.report()["dump_errors"] == 1

    def test_disabled_recorder_is_inert(self, tmp_path):
        flight = FlightRecorder(directory=str(tmp_path), enabled=False)
        flight.record("tick")
        assert flight.events() == []
        assert flight.dump("nope") is None
        assert list(tmp_path.iterdir()) == []


# ------------------------------------------------------------------ #
# Service integration: report compatibility + config plumbing
# ------------------------------------------------------------------ #


class TestServiceIntegration:
    def test_metrics_report_keys_unchanged_plus_telemetry(self, workload):
        graph, scores = workload
        service = SimRankService(
            graph.copy(), CFG, initial_scores=scores.copy()
        )
        try:
            service.submit(EdgeUpdate.insert(0, 7))
            service.drain()
            report = service.metrics_report()
            # The pre-telemetry surface, exactly — consumers parse these.
            # ("topk" joins only when a top-k index is configured.)
            assert set(report) == {
                "version",
                "queue_depth",
                "pending_targets",
                "scheduler",
                "executor",
                "precision",
                "degraded",
                "telemetry",
                "durability",
            }
            assert set(report["scheduler"]) == {
                "submitted",
                "cancelled_pairs",
                "drained_updates",
                "drained_batches",
                "drained_groups",
                "max_drained_groups",
                "coalescing_ratio",
            }
            telemetry = report["telemetry"]
            assert telemetry["enabled"] is True
            assert set(telemetry) == {
                "enabled",
                "tracing",
                "flight",
                "histograms",
            }
            # The executor stage digest rides the new bounded window.
            recent = report["executor"]["recent_plan_ms"]
            assert recent["count"] >= 1
            assert recent["p50"] <= recent["p99"]
        finally:
            service.close()

    def test_disabled_telemetry_via_config(self, workload):
        graph, scores = workload
        config = ServiceConfig(
            damping=CFG.damping,
            iterations=CFG.iterations,
            telemetry=TelemetryConfig(enabled=False),
        )
        service = SimRankService(
            graph.copy(), config, initial_scores=scores.copy()
        )
        try:
            service.submit(EdgeUpdate.insert(0, 9))
            service.drain()
            report = service.metrics_report()["telemetry"]
            assert report["enabled"] is False
            assert report["histograms"] == {}
            assert service.telemetry.tracer.export() == []
        finally:
            service.close()

    def test_telemetry_config_round_trips(self):
        config = ServiceConfig(
            telemetry=TelemetryConfig(
                trace_sample_rate=0.25, flight_dir="/tmp/flights"
            )
        )
        loaded = ServiceConfig.from_dict(config.to_dict())
        assert loaded.telemetry == config.telemetry

    def test_drain_span_lands_under_origin_trace(self, workload):
        graph, scores = workload
        service = SimRankService(
            graph.copy(), CFG, initial_scores=scores.copy()
        )
        try:
            service.note_origin_trace("origin-1")
            service.submit(EdgeUpdate.insert(1, 8))
            service.drain()
            spans = service.telemetry.tracer.export("origin-1")
            names = [span["name"] for span in spans]
            assert "drain.apply" in names
            drain = spans[names.index("drain.apply")]
            assert drain["attrs"]["fan_in"] == 1
            assert drain["attrs"]["updates"] >= 1
        finally:
            service.close()
