"""Tests for :class:`UpdateWorkspace` and the pooled-buffer update path.

Beyond unit-testing the pool itself, these tests assert the key
end-to-end property of the PR-1 rework: routing Inc-SR and Inc-uSR
through a live :class:`TransitionStore` + :class:`UpdateWorkspace`
matches the workspace-free scipy path to float round-off (the store's
mat-vec uses pairwise reduction, so the last bit can differ from
scipy's sequential loop).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimRankConfig
from repro.graph.generators import (
    erdos_renyi_digraph,
    random_update_batch,
)
from repro.graph.transition import backward_transition_matrix
from repro.incremental.engine import DynamicSimRank
from repro.incremental.gamma import compute_update_vectors
from repro.incremental.inc_sr import inc_sr_update
from repro.incremental.inc_usr import inc_usr_update
from repro.incremental.workspace import BUFFER_NAMES, UpdateWorkspace
from repro.linalg.qstore import TransitionStore
from repro.simrank.matrix import matrix_simrank


class TestUpdateWorkspace:
    def test_buffers_grow_by_doubling(self):
        workspace = UpdateWorkspace(10)
        first = workspace.capacity
        workspace.ensure_capacity(first + 1)
        assert workspace.capacity >= 2 * first

    def test_vector_reuses_memory(self):
        workspace = UpdateWorkspace(8)
        view_a = workspace.vector("w", 8)
        view_b = workspace.vector("w", 8)
        assert view_a.base is view_b.base

    def test_zeros_clears_previous_contents(self):
        workspace = UpdateWorkspace(4)
        workspace.vector("gamma", 4)[:] = 7.0
        np.testing.assert_array_equal(workspace.zeros("gamma", 4), np.zeros(4))

    def test_all_roles_available(self):
        workspace = UpdateWorkspace(4)
        for name in BUFFER_NAMES:
            assert workspace.vector(name, 4).shape == (4,)
        assert workspace.nbytes() > 0


class TestWorkspacePathEquivalence:
    """Store+workspace hot path == scipy cold path up to round-off."""

    @pytest.mark.parametrize("seed", [3, 8, 15])
    def test_update_vectors_identical(self, seed):
        graph = erdos_renyi_digraph(30, 0.1, seed=seed)
        config = SimRankConfig(damping=0.6, iterations=10)
        q_matrix = backward_transition_matrix(graph)
        scores = matrix_simrank(graph, config)
        store = TransitionStore.from_graph(graph)
        workspace = UpdateWorkspace(graph.num_nodes)
        batch = random_update_batch(graph, 4, 2, seed=seed + 1)
        for update in batch:
            cold = compute_update_vectors(q_matrix, scores, update, graph, config)
            hot = compute_update_vectors(
                store, scores, update, graph, config, workspace=workspace
            )
            np.testing.assert_array_equal(cold.u, hot.u)
            np.testing.assert_array_equal(cold.v, hot.v)
            np.testing.assert_allclose(cold.gamma, hot.gamma, atol=1e-14)
            assert cold.lam == pytest.approx(hot.lam, rel=1e-12, abs=1e-14)
            assert cold.target_degree == hot.target_degree

    @pytest.mark.parametrize("algorithm", ["inc-sr", "inc-usr"])
    def test_unit_updates_identical(self, algorithm):
        graph = erdos_renyi_digraph(25, 0.12, seed=2)
        config = SimRankConfig(damping=0.6, iterations=12)
        q_matrix = backward_transition_matrix(graph)
        scores = matrix_simrank(graph, config)
        store = TransitionStore.from_graph(graph)
        workspace = UpdateWorkspace(graph.num_nodes)
        update_fn = inc_sr_update if algorithm == "inc-sr" else inc_usr_update
        for update in random_update_batch(graph, 3, 2, seed=4):
            cold = update_fn(graph, q_matrix, scores, update, config)
            hot = update_fn(
                graph, store, scores, update, config, workspace=workspace
            )
            np.testing.assert_allclose(cold.new_s, hot.new_s, atol=1e-13)

    def test_engine_inc_sr_matches_inc_usr_through_workspace(self):
        """Lossless pruning survives the store/workspace rework."""
        graph = erdos_renyi_digraph(25, 0.12, seed=6)
        config = SimRankConfig(damping=0.6, iterations=12)
        initial = matrix_simrank(graph, config)
        batch = random_update_batch(graph, 6, 4, seed=7)
        pruned = DynamicSimRank(
            graph, config, algorithm="inc-sr", initial_scores=initial
        )
        unpruned = DynamicSimRank(
            graph, config, algorithm="inc-usr", initial_scores=initial
        )
        pruned.apply(batch)
        unpruned.apply(batch)
        np.testing.assert_allclose(
            pruned.similarities(), unpruned.similarities(), atol=1e-12
        )
        np.testing.assert_array_equal(
            pruned.transition_matrix.toarray(),
            unpruned.transition_matrix.toarray(),
        )

    def test_engine_add_node_grows_scores_amortized(self):
        graph = erdos_renyi_digraph(12, 0.15, seed=1)
        config = SimRankConfig(damping=0.6, iterations=8)
        engine = DynamicSimRank(graph, config)
        before = engine.similarities()
        nodes = [engine.add_node() for _ in range(10)]
        assert nodes == list(range(12, 22))
        after = engine.similarities()
        assert after.shape == (22, 22)
        assert after.dtype == before.dtype
        np.testing.assert_array_equal(after[:12, :12], before)
        for node in nodes:
            assert engine.similarity(node, node) == pytest.approx(
                1.0 - config.damping
            )
            assert engine.transition_store.in_degree(node) == 0
        # Subsequent edges into the new nodes flow through the hot path;
        # pruned and unpruned engines replaying the same sequence agree.
        from repro.graph.transition import verify_transition_matrix
        from repro.graph.updates import EdgeUpdate

        twin = DynamicSimRank(graph, config, algorithm="inc-usr")
        for _ in nodes:
            twin.add_node()
        for update in (
            EdgeUpdate.insert(0, nodes[0]),
            EdgeUpdate.insert(nodes[0], nodes[1]),
        ):
            engine.apply(update)
            twin.apply(update)
        assert (
            verify_transition_matrix(engine.transition_matrix, engine.graph)
            is None
        )
        np.testing.assert_allclose(
            engine.similarities(), twin.similarities(), atol=1e-12
        )
