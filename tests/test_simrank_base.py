"""Tests for repro.simrank.base (shared validation helpers)."""

import numpy as np
import pytest

from repro import SimRankConfig
from repro.exceptions import DimensionError
from repro.graph.transition import backward_transition_matrix
from repro.simrank.base import check_similarity_matrix, default_config, resolve_q


class TestResolveQ:
    def test_accepts_graph(self, diamond_graph):
        q = resolve_q(diamond_graph)
        np.testing.assert_allclose(
            q.toarray(), backward_transition_matrix(diamond_graph).toarray()
        )

    def test_accepts_dense_matrix(self):
        dense = np.asarray([[0.0, 1.0], [0.5, 0.5]])
        q = resolve_q(dense)
        np.testing.assert_allclose(q.toarray(), dense)

    def test_accepts_sparse_matrix(self, diamond_graph):
        original = backward_transition_matrix(diamond_graph)
        q = resolve_q(original)
        np.testing.assert_allclose(q.toarray(), original.toarray())

    def test_rejects_non_square(self):
        with pytest.raises(DimensionError):
            resolve_q(np.zeros((2, 3)))


class TestDefaultConfig:
    def test_none_gives_paper_defaults(self):
        config = default_config(None)
        assert config.damping == 0.6
        assert config.iterations == 15

    def test_passthrough(self):
        config = SimRankConfig(0.8, 10)
        assert default_config(config) is config


class TestCheckSimilarityMatrix:
    def test_accepts_valid_matrix(self, cyclic_graph, config):
        from repro.simrank.exact import exact_simrank

        check_similarity_matrix(exact_simrank(cyclic_graph, config), config.damping)

    def test_rejects_non_square(self):
        with pytest.raises(DimensionError):
            check_similarity_matrix(np.zeros((2, 3)), 0.6)

    def test_rejects_asymmetric(self):
        matrix = np.asarray([[0.4, 0.1], [0.3, 0.4]])
        with pytest.raises(ValueError, match="symmetric"):
            check_similarity_matrix(matrix, 0.6)

    def test_rejects_out_of_range(self):
        matrix = np.asarray([[1.5, 0.0], [0.0, 1.5]])
        with pytest.raises(ValueError, match="outside"):
            check_similarity_matrix(matrix, 0.6)

    def test_rejects_low_diagonal(self):
        matrix = np.asarray([[0.1, 0.0], [0.0, 0.4]])
        with pytest.raises(ValueError, match="diagonal"):
            check_similarity_matrix(matrix, 0.6)

    def test_tolerance_allows_float_noise(self):
        matrix = np.asarray([[0.4 - 1e-12, 0.0], [0.0, 0.4]])
        check_similarity_matrix(matrix, 0.6, atol=1e-8)
