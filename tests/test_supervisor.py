"""Unit tests for the supervision primitives (no subprocesses).

AdaptiveDeadline, RespawnBudget, WorkerHealth, and the WorkerSupervisor
facade are plain bookkeeping driven synchronously by the pool, so they
are tested here as pure units with injected clocks; the integration
behaviour (kills, quarantine, degradation) lives in test_chaos.py and
test_degraded.py.
"""

from __future__ import annotations

import pytest

from repro.cluster.faults import FaultInjector, FaultPlan
from repro.cluster.messages import word_checksums
from repro.cluster.supervisor import (
    AdaptiveDeadline,
    QuarantinedBatch,
    RespawnBudget,
    WorkerHealth,
    WorkerSupervisor,
)


class TestAdaptiveDeadline:
    def test_cold_worker_uses_fallback(self):
        deadline = AdaptiveDeadline(command_timeout=10.0, floor=0.5)
        assert deadline.deadline(0) == 10.0
        assert deadline.deadline(0, units=3) == 30.0

    def test_warm_worker_tracks_p99(self):
        deadline = AdaptiveDeadline(
            command_timeout=100.0, floor=0.0, multiplier=8.0, min_samples=8
        )
        for _ in range(50):
            deadline.observe(0, 0.01)
        # p99 of a constant stream is the constant itself.
        assert deadline.deadline(0) == pytest.approx(0.08)
        assert deadline.deadline(0, units=4) == pytest.approx(0.32)

    def test_floor_absorbs_fast_workers(self):
        deadline = AdaptiveDeadline(
            command_timeout=100.0, floor=5.0, min_samples=4
        )
        for _ in range(20):
            deadline.observe(1, 1e-5)
        assert deadline.deadline(1) == 5.0

    def test_deadline_never_exceeds_fixed_timeout(self):
        deadline = AdaptiveDeadline(
            command_timeout=1.0, floor=0.0, multiplier=8.0, min_samples=4
        )
        for _ in range(20):
            deadline.observe(0, 10.0)  # pathological samples
        assert deadline.deadline(0) == 1.0

    def test_mark_cold_resets_to_fallback(self):
        deadline = AdaptiveDeadline(
            command_timeout=50.0, floor=0.0, min_samples=4
        )
        for _ in range(10):
            deadline.observe(0, 0.01)
        assert deadline.deadline(0) < 50.0
        deadline.mark_cold(0)
        assert deadline.deadline(0) == 50.0
        # One observed reply warms it back up.
        deadline.observe(0, 0.01)
        assert deadline.deadline(0) < 50.0

    def test_per_worker_isolation(self):
        deadline = AdaptiveDeadline(
            command_timeout=50.0, floor=0.0, min_samples=4
        )
        for _ in range(10):
            deadline.observe(0, 0.001)
            deadline.observe(1, 0.1)
        assert deadline.deadline(1) > deadline.deadline(0)


class TestRespawnBudget:
    def _budget(self, capacity, refill_seconds=60.0, start=0.0):
        clock = {"now": start}
        sleeps = []
        budget = RespawnBudget(
            capacity,
            base=0.05,
            cap=2.0,
            refill_seconds=refill_seconds,
            clock=lambda: clock["now"],
            sleep=sleeps.append,
        )
        return budget, clock, sleeps

    def test_spend_until_dry(self):
        budget, _, _ = self._budget(2)
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()
        assert budget.spent == 2

    def test_refills_over_time(self):
        budget, clock, _ = self._budget(1, refill_seconds=10.0)
        assert budget.try_spend()
        assert not budget.try_spend()
        clock["now"] += 10.0
        assert budget.try_spend()

    def test_backoff_doubles_and_jitters(self):
        budget, _, sleeps = self._budget(8)
        delays = [budget.backoff() for _ in range(4)]
        assert sleeps == delays
        # Exponential base with up to +100% jitter, never less than base.
        for attempt, delay in enumerate(delays):
            base = 0.05 * 2.0**attempt
            assert base <= delay <= 2.0 * base * 2.0
        budget.reset_backoff()
        assert budget.backoff() <= 0.05 * 2.0

    def test_jitter_is_deterministic_per_seed(self):
        first = RespawnBudget(4, seed=7, sleep=lambda _: None)
        second = RespawnBudget(4, seed=7, sleep=lambda _: None)
        assert [first.backoff() for _ in range(3)] == [
            second.backoff() for _ in range(3)
        ]


class TestWorkerHealth:
    def test_suspect_events_count_transitions(self):
        health = WorkerHealth(0)
        health.mark("suspect")
        health.mark("suspect")  # staying suspect is one event
        health.mark("healthy")
        health.mark("suspect")
        assert health.suspect_events == 2

    def test_rejects_unknown_state(self):
        with pytest.raises(ValueError):
            WorkerHealth(0).mark("zombie")


class TestWorkerSupervisor:
    def test_disabled_keeps_fixed_deadlines(self):
        sup = WorkerSupervisor(
            2, command_timeout=7.0, max_respawns=3, enabled=False
        )
        for _ in range(50):
            sup.observe_reply(0, 0.001)
        assert sup.deadline(0) == 7.0
        assert sup.deadline(0, units=5) == 35.0

    def test_enabled_adapts_after_warmup(self):
        sup = WorkerSupervisor(
            2, command_timeout=60.0, max_respawns=3, deadline_floor=0.5
        )
        for _ in range(50):
            sup.observe_reply(0, 0.001)
        assert sup.deadline(0) == 0.5  # floor, far below the fixed timeout

    def test_respawn_lifecycle_and_budget_exhaustion(self):
        sup = WorkerSupervisor(
            1,
            command_timeout=5.0,
            max_respawns=2,
            backoff_base=0.0,
            refill_seconds=1e9,
        )
        assert sup.begin_respawn(0)
        assert sup.health[0].state == "respawning"
        sup.finish_respawn(0)
        assert sup.health[0].state == "healthy"
        assert sup.begin_respawn(0)
        sup.finish_respawn(0)
        assert not sup.begin_respawn(0)  # budget dry
        assert sup.health[0].state == "dead"

    def test_reply_clears_suspect(self):
        sup = WorkerSupervisor(2, command_timeout=5.0, max_respawns=3)
        sup.mark_suspect(1)
        assert sup.health[1].state == "suspect"
        sup.observe_reply(1, 0.01)
        assert sup.health[1].state == "healthy"

    def test_report_shape(self):
        sup = WorkerSupervisor(2, command_timeout=5.0, max_respawns=3)
        sup.quarantine(
            QuarantinedBatch(
                journal_index=4, worker_ids=(0,), count=3, crashes=2
            )
        )
        report = sup.report()
        assert report["enabled"] is True
        assert report["worker_states"] == {0: "healthy", 1: "healthy"}
        assert report["quarantined_batches"] == 1
        assert report["respawn_tokens"] == 6.0  # 3 per worker, shared


class TestQuarantinedBatch:
    def test_describe_names_journal_position(self):
        record = QuarantinedBatch(
            journal_index=7, worker_ids=(0, 1), count=12, crashes=2
        )
        assert "journal[7]" in record.describe()
        assert "12 plans" in record.describe()


class TestFaultPlanUnits:
    def test_seeded_is_deterministic(self):
        first = FaultPlan.seeded(3, workers=2, horizon=20)
        second = FaultPlan.seeded(3, workers=2, horizon=20)
        assert first.actions == second.actions
        assert first.seed == 3

    def test_seeded_respects_kind_filter(self):
        plan = FaultPlan.seeded(
            5, workers=2, horizon=20, max_faults=3, kinds=("crash",)
        )
        assert plan.actions
        assert all(action.kind == "crash" for action in plan.actions)

    def test_injector_clock_fires_once(self):
        plan = FaultPlan.seeded(9, workers=2, horizon=10)
        injector = FaultInjector(plan)
        assert injector.clock == 0
        report = injector.report()
        assert report["scheduled"] == len(plan.actions)
        assert report["pending"] == len(plan.actions)


class TestChecksums:
    def test_sections_localize_corruption(self):
        import numpy as np

        # Packed layout: targets(8), ranks(8), lens(12), idx(16), val(16).
        words = np.arange(60, dtype=np.int64)
        clean = word_checksums(words, 8, sections=(12, 16, 16))
        corrupted = words.copy()
        corrupted[30] ^= np.int64(1 << 17)  # inside the idx section
        dirty = word_checksums(corrupted, 8, sections=(12, 16, 16))
        differing = [
            i for i, (a, b) in enumerate(zip(clean, dirty)) if a != b
        ]
        assert differing == [3]
        # Identical payload => identical checksums (order-free XOR).
        assert clean == word_checksums(words.copy(), 8, sections=(12, 16, 16))
