"""Tests for repro.simrank.queries (single-source/single-pair)."""

import numpy as np
import pytest

from repro import SimRankConfig
from repro.exceptions import NodeNotFoundError
from repro.simrank.matrix import matrix_simrank
from repro.simrank.queries import (
    single_pair_simrank,
    single_source_simrank,
    top_k_similar_nodes,
)


class TestSingleSource:
    def test_matches_full_matrix_row(self, random_graph, config):
        full = matrix_simrank(random_graph, config)
        for node in (0, 7, 23, random_graph.num_nodes - 1):
            row = single_source_simrank(random_graph, node, config)
            np.testing.assert_allclose(row, full[node], atol=1e-10)

    def test_matches_on_cyclic_graph(self, cyclic_graph):
        config = SimRankConfig(damping=0.8, iterations=25)
        full = matrix_simrank(cyclic_graph, config)
        for node in range(cyclic_graph.num_nodes):
            row = single_source_simrank(cyclic_graph, node, config)
            np.testing.assert_allclose(row, full[node], atol=1e-10)

    def test_unknown_node_rejected(self, diamond_graph, config):
        with pytest.raises(NodeNotFoundError):
            single_source_simrank(diamond_graph, 10, config)


class TestSinglePair:
    def test_matches_full_matrix_entry(self, random_graph, config):
        full = matrix_simrank(random_graph, config)
        pairs = [(0, 1), (5, 9), (20, 20), (3, 30)]
        for a, b in pairs:
            score = single_pair_simrank(random_graph, a, b, config)
            assert score == pytest.approx(full[a, b], abs=1e-10)

    def test_symmetric(self, cyclic_graph, config):
        assert single_pair_simrank(
            cyclic_graph, 1, 3, config
        ) == pytest.approx(single_pair_simrank(cyclic_graph, 3, 1, config))

    def test_self_pair_uses_one_stack(self, cyclic_graph, config):
        full = matrix_simrank(cyclic_graph, config)
        score = single_pair_simrank(cyclic_graph, 2, 2, config)
        assert score == pytest.approx(full[2, 2], abs=1e-10)

    def test_unknown_node_rejected(self, diamond_graph, config):
        with pytest.raises(NodeNotFoundError):
            single_pair_simrank(diamond_graph, 0, 99, config)


class TestTopKSimilarNodes:
    def test_matches_full_matrix_ranking(self, random_graph, config):
        full = matrix_simrank(random_graph, config)
        node = 5
        top = top_k_similar_nodes(random_graph, node, 5, config)
        assert len(top) == 5
        assert node not in [other for other, _ in top]
        scores = [score for _, score in top]
        assert scores == sorted(scores, reverse=True)
        # Best entry matches a brute-force argmax over the full row.
        row = full[node].copy()
        row[node] = -np.inf
        assert top[0][1] == pytest.approx(float(row.max()), abs=1e-10)

    def test_k_exceeding_candidates(self, diamond_graph, config):
        top = top_k_similar_nodes(diamond_graph, 0, 100, config)
        assert len(top) == diamond_graph.num_nodes - 1
