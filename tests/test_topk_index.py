"""Tests for repro.executor.topk_index (shard-local incremental top-k).

The central property: after *arbitrary* update sequences, the
incrementally patched shard-heap ranking is bit-identical — same pairs,
same scores, same deterministic tie order — to the brute-force
:func:`repro.metrics.topk.top_k_pairs` pass over the dense matrix.
"""

import numpy as np
import pytest

from repro import DynamicSimRank, SimRankConfig
from repro.exceptions import DimensionError
from repro.executor import ScoreStore, ShardTopK, top_k_from_blocks
from repro.graph.generators import erdos_renyi_digraph
from repro.graph.updates import EdgeUpdate
from repro.metrics.topk import top_k_pairs
from repro.metrics.topk_tracker import TopKTracker
from repro.serving import SimRankService

from _streams import random_update_stream as _random_stream


@pytest.fixture
def config():
    return SimRankConfig(damping=0.6, iterations=12)


class TestBlockMerge:
    """The scan-free shard merge used by frozen snapshots."""

    def test_matches_brute_force_on_random_matrices(self):
        rng = np.random.default_rng(5)
        for n, shard_rows in ((1, 1), (7, 3), (24, 8), (40, 16)):
            scores = rng.random((n, n))
            scores = (scores + scores.T) / 2
            store = ScoreStore(scores, shard_rows=shard_rows)
            for k in (0, 1, 5, n, n * n):
                got = top_k_from_blocks(store.iter_shard_blocks(), k)
                assert got == top_k_pairs(store.to_array(), k)

    def test_deterministic_tie_order(self):
        # Massive ties (all-equal scores) must come out in (a, b) order,
        # exactly like the lexsort-based brute force.
        scores = np.full((20, 20), 0.25)
        store = ScoreStore(scores, shard_rows=4)
        got = top_k_from_blocks(store.iter_shard_blocks(), 7)
        assert got == top_k_pairs(scores, 7)
        assert [pair[:2] for pair in got] == [
            (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7),
        ]

    def test_include_self_and_validation(self):
        rng = np.random.default_rng(6)
        scores = rng.random((10, 10))
        scores = (scores + scores.T) / 2
        store = ScoreStore(scores, shard_rows=4)
        got = top_k_from_blocks(store.iter_shard_blocks(), 6, include_self=True)
        assert got == top_k_pairs(scores, 6, include_self=True)
        with pytest.raises(DimensionError):
            top_k_from_blocks(store.iter_shard_blocks(), -1)


class TestIncrementalProperty:
    def test_matches_brute_force_after_arbitrary_updates(self, config):
        """The required property test: unit-update streams, many checks."""
        graph = erdos_renyi_digraph(60, 0.06, seed=7)
        engine = DynamicSimRank(graph, config, shard_rows=16)
        assert engine.top_k(8) == top_k_pairs(engine.similarities(), 8)
        for i, update in enumerate(_random_stream(engine.graph, 90, seed=8)):
            engine.apply(update)
            if i % 5 == 0:
                assert engine.top_k(8) == top_k_pairs(
                    engine.similarities(), 8
                )
        # After the stream the index must still agree, and must have
        # been exercised incrementally (not rebuilt per query).
        assert engine.top_k(8) == top_k_pairs(engine.similarities(), 8)
        stats = engine.topk_index.stats
        assert stats.queries >= 19
        assert stats.patched_entries > 0

    def test_matches_brute_force_through_consolidated_drains(self, config):
        graph = erdos_renyi_digraph(50, 0.07, seed=17)
        service = SimRankService(graph, config, shard_rows=8)
        assert service.top_k(10) == top_k_pairs(
            service.engine.similarities(), 10
        )
        for seed in (18, 19, 20):
            service.submit_many(_random_stream(service.engine.graph, 25, seed))
            service.drain()
            assert service.top_k(10) == top_k_pairs(
                service.engine.similarities(), 10
            )

    def test_deletion_heavy_stream_forces_floor_invalidation(self, config):
        """Score decreases must trigger lazy re-scans, not wrong answers."""
        rng = np.random.default_rng(27)
        graph = erdos_renyi_digraph(40, 0.15, seed=27)
        engine = DynamicSimRank(graph, config, shard_rows=8)
        engine.top_k(5)
        edges = list(engine.graph.edges())
        rng.shuffle(edges)
        for source, target in edges[:30]:
            engine.apply(EdgeUpdate.delete(source, target))
            assert engine.top_k(5) == top_k_pairs(engine.similarities(), 5)
        assert engine.topk_index.stats.floor_invalidations > 0
        assert engine.topk_index.stats.shard_rescans > 0

    def test_k_growth_rebuilds_index(self, config):
        graph = erdos_renyi_digraph(30, 0.1, seed=37)
        engine = DynamicSimRank(graph, config, shard_rows=8)
        assert engine.top_k(3) == top_k_pairs(engine.similarities(), 3)
        first = engine.topk_index
        # Within capacity: same index serves a larger k.
        assert engine.top_k(5) == top_k_pairs(engine.similarities(), 5)
        assert engine.topk_index is first
        # Beyond capacity: a larger index replaces it, still exact.
        big_k = first.capacity + 10
        assert engine.top_k(big_k) == top_k_pairs(
            engine.similarities(), big_k
        )
        assert engine.topk_index is not first

    def test_add_node_invalidates_then_agrees(self, config):
        graph = erdos_renyi_digraph(20, 0.15, seed=47)
        engine = DynamicSimRank(graph, config, shard_rows=4)
        engine.top_k(6)
        node = engine.add_node()
        assert engine.top_k(6) == top_k_pairs(engine.similarities(), 6)
        engine.apply(EdgeUpdate.insert(0, node))
        assert engine.top_k(6) == top_k_pairs(engine.similarities(), 6)

    def test_include_self_fallback(self, config):
        graph = erdos_renyi_digraph(25, 0.1, seed=57)
        engine = DynamicSimRank(graph, config, shard_rows=8)
        assert engine.top_k(5, include_self=True) == top_k_pairs(
            engine.similarities(), 5, include_self=True
        )

    def test_edge_k_values(self, config):
        graph = erdos_renyi_digraph(10, 0.2, seed=67)
        engine = DynamicSimRank(graph, config)
        assert engine.top_k(0) == []
        with pytest.raises(DimensionError):
            engine.top_k(-1)


class TestShardTopKUnit:
    def test_validation(self, config):
        graph = erdos_renyi_digraph(10, 0.2, seed=77)
        engine = DynamicSimRank(graph, config)
        with pytest.raises(DimensionError):
            ShardTopK(engine.score_store, k=0)
        with pytest.raises(DimensionError):
            ShardTopK(engine.score_store, k=10, capacity=5)
        index = ShardTopK(engine.score_store, k=3)
        with pytest.raises(DimensionError):
            index.top_k(index.capacity + 1)

    def test_heap_hit_rate_counts_scanless_queries(self, config):
        graph = erdos_renyi_digraph(30, 0.1, seed=87)
        engine = DynamicSimRank(graph, config, shard_rows=8)
        engine.top_k(5)  # build: miss
        engine.top_k(5)  # nothing changed: pure heap hit
        stats = engine.topk_index.stats
        assert stats.queries == 2
        assert stats.heap_hits == 1
        assert stats.clean_query_rate() == 0.5
        # Shard-level: first query re-scanned every shard (build), the
        # second touched none — exactly half the shard visits hit.
        assert stats.shard_queries == 2 * engine.score_store.num_shards
        assert stats.heap_hit_rate() == 0.5

    def test_dense_rewrite_invalidates(self, config):
        graph = erdos_renyi_digraph(20, 0.1, seed=97)
        engine = DynamicSimRank(graph, config, shard_rows=8)
        engine.top_k(4)
        assert engine.topk_index.dirty_shards() == 0
        rng = np.random.default_rng(97)
        fresh = rng.random((20, 20))
        fresh = (fresh + fresh.T) / 2
        engine.score_store.replace_dense(fresh)
        assert engine.topk_index.dirty_shards() == engine.score_store.num_shards
        assert engine.top_k(4) == top_k_pairs(fresh, 4)


class TestSnapshotTopK:
    def test_snapshot_ranking_matches_dense(self, config):
        graph = erdos_renyi_digraph(40, 0.08, seed=3)
        service = SimRankService(graph, config, shard_rows=16)
        view = service.snapshot()
        frozen = view.similarities()
        assert view.top_k(10) == top_k_pairs(frozen, 10)
        service.submit_many(_random_stream(service.engine.graph, 30, seed=4))
        service.drain()
        # Frozen view still ranks the frozen version; a fresh one moved.
        assert view.top_k(10) == top_k_pairs(frozen, 10)
        fresh = service.snapshot()
        assert fresh.top_k(10) == top_k_pairs(fresh.similarities(), 10)


class TestTrackerIntegration:
    def test_tracker_rides_the_shard_index(self, config):
        graph = erdos_renyi_digraph(30, 0.1, seed=5)
        engine = DynamicSimRank(graph, config, shard_rows=8)
        tracker = TopKTracker(engine, k=5)
        assert engine.topk_index is not None  # built by the tracker
        queries_before = engine.topk_index.stats.queries
        for update in _random_stream(engine.graph, 15, seed=6):
            engine.apply(update)
            tracker.refresh()
        assert tracker.current() == top_k_pairs(engine.similarities(), 5)
        assert engine.topk_index.stats.queries > queries_before

    def test_tracker_falls_back_without_top_k(self):
        class DenseOnly:
            def __init__(self, scores):
                self._scores = scores

            def similarities(self):
                return self._scores

        rng = np.random.default_rng(8)
        scores = rng.random((12, 12))
        scores = (scores + scores.T) / 2
        tracker = TopKTracker(DenseOnly(scores), k=4)
        assert tracker.current() == top_k_pairs(scores, 4)
