"""Tests for repro.linalg.sylvester."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import DimensionError
from repro.linalg.sylvester import (
    rank_one_sylvester_series,
    sylvester_series,
    updated_matvec,
)


class TestSylvesterSeries:
    def test_zero_iterations_returns_constant(self):
        c = np.arange(9.0).reshape(3, 3)
        result = sylvester_series(np.zeros((3, 3)), np.zeros((3, 3)), c, 0)
        np.testing.assert_array_equal(result, c)

    def test_matches_manual_partial_sum(self):
        rng = np.random.default_rng(0)
        a = 0.4 * rng.random((4, 4))
        b = 0.4 * rng.random((4, 4))
        c = rng.random((4, 4))
        expected = c + a @ c @ b + a @ a @ c @ b @ b
        result = sylvester_series(a, b, c, iterations=2)
        np.testing.assert_allclose(result, expected, atol=1e-12)

    def test_converges_to_kron_solution(self):
        from repro.linalg.kron import solve_sylvester_kron

        rng = np.random.default_rng(1)
        a = 0.3 * rng.random((5, 5))
        b = 0.3 * rng.random((5, 5))
        c = rng.random((5, 5))
        truth = solve_sylvester_kron(a, b, c)
        approx = sylvester_series(a, b, c, iterations=80)
        np.testing.assert_allclose(approx, truth, atol=1e-10)

    def test_rejects_negative_iterations(self):
        with pytest.raises(DimensionError):
            sylvester_series(np.eye(2), np.eye(2), np.eye(2), -1)

    def test_rejects_incompatible_shapes(self):
        with pytest.raises(DimensionError):
            sylvester_series(np.eye(3), np.eye(3), np.eye(2), 1)


class TestRankOneSylvesterSeries:
    def _random_setup(self, seed=0, n=6):
        rng = np.random.default_rng(seed)
        q = sp.csr_matrix(0.3 * rng.random((n, n)))
        u = rng.random(n)
        w = rng.random(n)
        return q, u, w

    def test_matches_dense_series(self):
        q, u, w = self._random_setup()
        damping = 0.6
        result = rank_one_sylvester_series(
            lambda x: q @ x, u, w, damping, iterations=10
        )
        dense = sylvester_series(
            damping * q, q.T, damping * np.outer(u, w), iterations=10
        )
        np.testing.assert_allclose(result.matrix, dense, atol=1e-12)

    def test_factor_stack_reconstructs_matrix(self):
        q, u, w = self._random_setup(seed=2)
        result = rank_one_sylvester_series(
            lambda x: q @ x, u, w, 0.7, iterations=8
        )
        np.testing.assert_allclose(
            result.reconstruct(), result.matrix, atol=1e-12
        )

    def test_factors_have_expected_count(self):
        q, u, w = self._random_setup()
        result = rank_one_sylvester_series(lambda x: q @ x, u, w, 0.6, 5)
        assert len(result.left_factors) == 6  # k = 0..5
        assert len(result.right_factors) == 6

    def test_materialize_false_skips_matrix(self):
        q, u, w = self._random_setup()
        result = rank_one_sylvester_series(
            lambda x: q @ x, u, w, 0.6, 5, materialize=False
        )
        assert result.matrix is None
        assert result.reconstruct().shape == (6, 6)

    def test_solves_rank_one_sylvester_equation(self):
        from repro.linalg.kron import solve_sylvester_kron

        q, u, w = self._random_setup(seed=3)
        damping = 0.5
        truth = solve_sylvester_kron(
            damping * q, q.T, damping * np.outer(u, w)
        )
        result = rank_one_sylvester_series(
            lambda x: q @ x, u, w, damping, iterations=80
        )
        np.testing.assert_allclose(result.matrix, truth, atol=1e-10)

    def test_rejects_mismatched_vectors(self):
        with pytest.raises(DimensionError):
            rank_one_sylvester_series(
                lambda x: x, np.zeros(3), np.zeros(4), 0.6, 2
            )

    def test_rejects_negative_iterations(self):
        with pytest.raises(DimensionError):
            rank_one_sylvester_series(
                lambda x: x, np.zeros(3), np.zeros(3), 0.6, -2
            )


class TestUpdatedMatvec:
    def test_equals_materialized_rank_one_update(self):
        rng = np.random.default_rng(4)
        n = 7
        q = sp.csr_matrix(rng.random((n, n)))
        u = rng.random(n)
        v = rng.random(n)
        x = rng.random(n)
        apply_updated = updated_matvec(q, u, v)
        q_tilde = q.toarray() + np.outer(u, v)
        np.testing.assert_allclose(apply_updated(x), q_tilde @ x, atol=1e-12)
