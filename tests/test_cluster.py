"""Multi-process shard-worker pool: equivalence, snapshots, crash replay.

The in-process executor is the oracle throughout: the pool must produce
bit-identical scores, rankings, and snapshots for identical drain
sequences, keep pinned readers frozen across worker crashes, and come
back from a SIGKILL via snapshot + journal replay.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro import SimRankConfig
from repro.cluster import ShardClient, ShardWorkerPool
from repro.executor.score_store import ScoreStore
from repro.exceptions import ClusterError
from repro.graph.generators import erdos_renyi_digraph
from repro.incremental.engine import DynamicSimRank
from repro.metrics.topk import top_k_pairs
from repro.serving import SimRankService
from repro.simrank.matrix import matrix_simrank

from _streams import random_update_stream

# Every test in this module must leave zero shm segments behind.
pytestmark = pytest.mark.usefixtures("shm_guard")

CFG = SimRankConfig(damping=0.6, iterations=8)


def _scores_for(graph, config=CFG):
    return matrix_simrank(graph, config)


@pytest.fixture(scope="module")
def workload():
    """A shared mid-size graph + precomputed scores + update stream."""
    graph = erdos_renyi_digraph(150, 0.04, seed=11)
    scores = _scores_for(graph)
    updates = random_update_stream(graph, 110, seed=13)
    return graph, scores, updates


# ------------------------------------------------------------------ #
# Pool / client basics
# ------------------------------------------------------------------ #


class TestPoolBasics:
    def test_reads_match_in_process_store(self):
        rng = np.random.default_rng(0)
        n = 50
        scores = rng.random((n, n))
        ref = ScoreStore(scores, shard_rows=16)
        with ShardWorkerPool(scores, shard_rows=16, workers=2) as pool:
            client = ShardClient(pool)
            assert client.shape == ref.shape
            assert np.array_equal(client.to_array(), ref.to_array())
            assert client.entry(3, 7) == ref.entry(3, 7)
            assert np.array_equal(client.row(9), ref.row(9))
            assert np.array_equal(client.column(21), ref.column(21))
            assert np.array_equal(client[:, 5], ref[:, 5])
            vec = rng.random(n)
            assert np.array_equal(client.matvec(vec), ref.matvec(vec))
            blocks = list(client.iter_shard_blocks())
            assert len(blocks) == ref.num_shards

    def test_rejects_bad_construction(self):
        with pytest.raises(Exception):
            ShardWorkerPool(np.zeros((3, 4)), workers=1)
        with pytest.raises(ClusterError):
            ShardWorkerPool(np.zeros((4, 4)), workers=0)

    def test_closed_pool_refuses_commands(self):
        pool = ShardWorkerPool(np.zeros((8, 8)), shard_rows=4, workers=1)
        pool.close()
        with pytest.raises(ClusterError):
            pool.ping()
        pool.close()  # idempotent


# ------------------------------------------------------------------ #
# Engine-level equivalence
# ------------------------------------------------------------------ #


class TestEngineEquivalence:
    def test_unit_updates_bit_identical(self, workload):
        graph, scores, updates = workload
        ref = DynamicSimRank(graph, CFG, initial_scores=scores)
        with DynamicSimRank(
            graph, CFG, initial_scores=scores, executor="process", workers=2
        ) as engine:
            for update in updates[:25]:
                ref.apply(update)
                engine.apply(update)
            assert np.array_equal(
                engine.similarities(), ref.similarities()
            )
            assert engine.top_k(10) == ref.top_k(10)

    def test_add_node_and_self_score(self):
        graph = erdos_renyi_digraph(40, 0.06, seed=3)
        scores = _scores_for(graph)
        ref = DynamicSimRank(graph, CFG, initial_scores=scores)
        with DynamicSimRank(
            graph,
            CFG,
            initial_scores=scores,
            executor="process",
            workers=2,
            shard_rows=16,
        ) as engine:
            for _ in range(3):
                assert engine.add_node() == ref.add_node()
            assert np.array_equal(engine.similarities(), ref.similarities())
            # Workers received the packed transition payload.
            versions = {
                metrics["transition_version"]
                for metrics in engine.score_store.worker_metrics()
            }
            assert versions == {engine.transition_store.version}

    def test_batch_and_inc_usr_paths(self):
        graph = erdos_renyi_digraph(40, 0.06, seed=5)
        scores = _scores_for(graph)
        updates = random_update_stream(graph, 4, seed=6)
        for algorithm in ("inc-usr", "batch"):
            ref = DynamicSimRank(
                graph, CFG, algorithm=algorithm, initial_scores=scores
            )
            with DynamicSimRank(
                graph,
                CFG,
                algorithm=algorithm,
                initial_scores=scores,
                executor="process",
                workers=2,
                shard_rows=16,
            ) as engine:
                for update in updates:
                    ref.apply(update)
                    engine.apply(update)
                assert np.array_equal(
                    engine.similarities(), ref.similarities()
                )


# ------------------------------------------------------------------ #
# Service-level equivalence (the acceptance scenario)
# ------------------------------------------------------------------ #


class TestServiceEquivalence:
    def test_hundred_mixed_updates_bit_identical(self, workload):
        """>=100 mixed updates drained on the pool == in-process, bitwise."""
        graph, scores, updates = workload
        assert len(updates) >= 100
        ref = SimRankService(graph, CFG, initial_scores=scores, shard_rows=32)
        service = SimRankService(
            graph,
            CFG,
            initial_scores=scores,
            shard_rows=32,
            executor="process",
            workers=2,
        )
        try:
            chunk = 10
            for begin in range(0, len(updates), chunk):
                part = updates[begin : begin + chunk]
                ref.submit_many(part)
                service.submit_many(part)
                ref.drain()
                service.drain()
            assert np.array_equal(
                service.engine.similarities(), ref.engine.similarities()
            )
            assert service.top_k(10) == ref.top_k(10)
            expected = top_k_pairs(ref.engine.similarities(), 10)
            assert service.top_k(10) == expected
            view_ref = ref.snapshot()
            view_pool = service.snapshot()
            assert view_pool.top_k(10) == view_ref.top_k(10)
            assert np.array_equal(
                view_pool.similarities(), view_ref.similarities()
            )
            assert view_pool.single_pair(3, 5) == view_ref.single_pair(3, 5)
        finally:
            ref.close()
            service.close()

    def test_snapshot_isolation_across_drains(self, workload):
        graph, scores, updates = workload
        service = SimRankService(
            graph,
            CFG,
            initial_scores=scores,
            shard_rows=32,
            executor="process",
            workers=2,
        )
        try:
            pinned = service.snapshot()
            frozen = pinned.similarities()
            frozen_top = pinned.top_k(10)
            service.submit_many(updates[:40])
            service.drain()
            assert np.array_equal(pinned.similarities(), frozen)
            assert pinned.top_k(10) == frozen_top
            fresh = service.snapshot()
            assert fresh.version > pinned.version
            assert not np.array_equal(fresh.similarities(), frozen)
        finally:
            service.close()

    def test_background_writer_over_pool(self, workload):
        graph, scores, updates = workload
        with SimRankService(
            graph,
            CFG,
            initial_scores=scores,
            shard_rows=32,
            executor="process",
            workers=2,
            writer="background",
            drain_interval=0.002,
        ) as service:
            pinned = service.snapshot()
            frozen = pinned.similarities()
            service.submit_many(updates)
            assert service.flush(timeout=180.0)
            assert np.array_equal(pinned.similarities(), frozen)
            ranking = service.top_k(10)
            assert ranking == top_k_pairs(service.engine.similarities(), 10)
            report = service.metrics_report()
            assert report["executor"]["mode"] == "process"
            assert report["executor"]["workers"] == 2
            assert report["executor"]["plans"] > 0


# ------------------------------------------------------------------ #
# Worker crash: respawn + replay, exactly-once for readers
# ------------------------------------------------------------------ #


class TestWorkerCrash:
    def test_kill_mid_stream_replays_bit_identical(self, workload):
        graph, scores, updates = workload
        ref = SimRankService(graph, CFG, initial_scores=scores, shard_rows=32)
        service = SimRankService(
            graph,
            CFG,
            initial_scores=scores,
            shard_rows=32,
            executor="process",
            workers=2,
        )
        try:
            pool = service.engine.score_store.pool
            chunk = 10
            killed = False
            pinned = None
            frozen = None
            frozen_top = None
            for begin in range(0, len(updates), chunk):
                part = updates[begin : begin + chunk]
                ref.submit_many(part)
                service.submit_many(part)
                ref.drain()
                service.drain()
                if begin == 2 * chunk:
                    # Pin a reader, then SIGKILL a worker mid-stream.
                    pinned = service.snapshot()
                    frozen = pinned.similarities()
                    frozen_top = pinned.top_k(10)
                if begin == 3 * chunk and not killed:
                    os.kill(pool.worker_pids()[0], signal.SIGKILL)
                    killed = True
            assert killed
            assert pool.stats.crashes >= 1
            assert pool.stats.respawns >= 1
            # The respawned worker replayed to the bit-identical state.
            assert np.array_equal(
                service.engine.similarities(), ref.engine.similarities()
            )
            assert service.top_k(10) == ref.top_k(10)
            # The pinned reader never saw a torn byte.
            assert np.array_equal(pinned.similarities(), frozen)
            assert pinned.top_k(10) == frozen_top
        finally:
            ref.close()
            service.close()

    def test_kill_during_background_drain(self, workload):
        """A worker SIGKILL while the background writer drains is invisible
        to pinned readers and to final ranking correctness."""
        graph, scores, updates = workload
        with SimRankService(
            graph,
            CFG,
            initial_scores=scores,
            shard_rows=32,
            executor="process",
            workers=2,
            writer="background",
            drain_interval=0.001,
        ) as service:
            pool = service.engine.score_store.pool
            pinned = service.snapshot()
            frozen = pinned.similarities()
            service.submit_many(updates[:50])
            # Kill while the writer thread is (very likely) mid-drain.
            os.kill(pool.worker_pids()[1], signal.SIGKILL)
            service.submit_many(updates[50:])
            assert service.flush(timeout=180.0)
            assert pool.stats.crashes >= 1
            assert np.array_equal(pinned.similarities(), frozen)
            ranking = service.top_k(10)
            assert ranking == top_k_pairs(service.engine.similarities(), 10)

    def test_respawn_budget_exhaustion(self):
        scores = np.zeros((16, 16))
        pool = ShardWorkerPool(
            scores, shard_rows=8, workers=1, max_respawns=0
        )
        try:
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            with pytest.raises(ClusterError):
                pool.ping()
        finally:
            pool.close()


# ------------------------------------------------------------------ #
# Metrics plumbing
# ------------------------------------------------------------------ #


class TestClusterMetrics:
    def test_apply_report_attributes_latency(self, workload):
        graph, scores, updates = workload
        service = SimRankService(
            graph,
            CFG,
            initial_scores=scores,
            shard_rows=32,
            executor="process",
            workers=2,
        )
        try:
            service.submit_many(updates[:20])
            service.drain()
            report = service.metrics_report()["executor"]
            assert report["mode"] == "process"
            assert report["workers"] == 2
            assert report["plans"] > 0
            assert report["apply_seconds"] > 0.0
            assert report["per_shard_seconds"]
            assert report["per_worker_seconds"]
            assert report["ipc_seconds"] >= 0.0
        finally:
            service.close()


class TestBatchedPipeline:
    """Batched drains: pipelined dispatch, crash-mid-batch exactly-once."""

    def test_drain_dispatch_is_pipelined(self, workload):
        """drain() returns while the workers still apply the batch."""
        graph, scores, updates = workload
        service = SimRankService(
            graph,
            CFG,
            initial_scores=scores,
            shard_rows=32,
            executor="process",
            workers=2,
        )
        try:
            pool = service.engine.score_store.pool
            for pid in pool.worker_pids():
                os.kill(pid, signal.SIGSTOP)
            try:
                service.submit_many(updates[:10])
                service.drain()
                # Workers are frozen, so the only way drain() came back
                # is an uncollected in-flight batch.
                assert pool.inflight_batches() >= 1
            finally:
                for pid in pool.worker_pids():
                    os.kill(pid, signal.SIGCONT)
            # Any authoritative read settles the pipeline.
            ref = SimRankService(
                graph, CFG, initial_scores=scores, shard_rows=32
            )
            try:
                ref.submit_many(updates[:10])
                ref.drain()
                assert np.array_equal(
                    service.engine.similarities(), ref.engine.similarities()
                )
            finally:
                ref.close()
            assert pool.inflight_batches() == 0
        finally:
            service.close()

    def test_sigkill_between_dispatch_and_reply(self, workload):
        """SIGKILL after dispatch, before the reply: replay is exactly-once.

        SIGSTOP pins the worker so the batch is provably dispatched but
        unanswered when SIGKILL lands; the journal replay must rebuild
        the bit-identical state (each batch applied exactly once) and a
        reader pinned before the crash must stay bit-stable.
        """
        graph, scores, updates = workload
        ref = SimRankService(graph, CFG, initial_scores=scores, shard_rows=32)
        service = SimRankService(
            graph,
            CFG,
            initial_scores=scores,
            shard_rows=32,
            executor="process",
            workers=2,
        )
        try:
            pool = service.engine.score_store.pool
            chunk = 10
            # Warm up a few drains, then pin a reader.
            for begin in range(0, 3 * chunk, chunk):
                part = updates[begin : begin + chunk]
                ref.submit_many(part)
                service.submit_many(part)
                ref.drain()
                service.drain()
            pinned = service.snapshot()
            frozen = pinned.similarities()
            frozen_top = pinned.top_k(10)
            # Freeze worker 0, dispatch a batch it can never answer,
            # then kill it mid-batch.
            victim = pool.worker_pids()[0]
            os.kill(victim, signal.SIGSTOP)
            part = updates[3 * chunk : 4 * chunk]
            ref.submit_many(part)
            service.submit_many(part)
            ref.drain()
            service.drain()
            assert pool.inflight_batches() >= 1
            os.kill(victim, signal.SIGKILL)
            # Keep streaming after the crash.
            for begin in range(4 * chunk, len(updates), chunk):
                part = updates[begin : begin + chunk]
                ref.submit_many(part)
                service.submit_many(part)
                ref.drain()
                service.drain()
            assert np.array_equal(
                service.engine.similarities(), ref.engine.similarities()
            )
            assert pool.stats.crashes >= 1
            assert pool.stats.respawns >= 1
            assert service.top_k(10) == ref.top_k(10)
            assert np.array_equal(pinned.similarities(), frozen)
            assert pinned.top_k(10) == frozen_top
        finally:
            ref.close()
            service.close()

    def test_batch_wire_gauges(self, workload):
        """ipc_bytes / staged_bytes / batch_size make batching observable."""
        graph, scores, updates = workload
        service = SimRankService(
            graph,
            CFG,
            initial_scores=scores,
            shard_rows=32,
            executor="process",
            workers=2,
        )
        try:
            chunk = 10
            for begin in range(0, 50, chunk):
                service.submit_many(updates[begin : begin + chunk])
                service.drain()
            report = service.metrics_report()
            executor = report["executor"]
            assert executor["plan_batches"] >= 5
            assert executor["batch_size"] > 1.0
            assert executor["last_batch_size"] >= 1
            # The payload rode shared memory, not the pipes.
            assert executor["staged_bytes"] > executor["ipc_bytes"]
            assert executor["ipc_per_plan_ms"] >= 0.0
            assert (
                report["scheduler"]["max_drained_groups"]
                >= executor["last_batch_size"]
            )
        finally:
            service.close()

    def test_journal_stays_bounded_under_batches(self, workload):
        """Drain-only sessions (no reads, no snapshots) stay bounded.

        The assertion runs *inside* the loop: between drains nothing
        else syncs or checkpoints the pool, so this is exactly the
        mutate-only session the journal limit exists for.
        """
        graph, scores, updates = workload
        service = SimRankService(
            graph,
            CFG,
            initial_scores=scores,
            shard_rows=32,
            executor="process",
            workers=2,
        )
        try:
            pool = service.engine.score_store.pool
            pool.journal_limit = 3
            for begin in range(0, len(updates), 5):
                service.submit_many(updates[begin : begin + 5])
                service.drain()
                assert pool.journal_length() <= 3
        finally:
            service.close()


class TestJournalBounds:
    """The crash-replay journal must stay bounded without snapshots."""

    def test_auto_checkpoint_caps_journal(self):
        rng = np.random.default_rng(1)
        scores = rng.random((32, 32))
        pool = ShardWorkerPool(
            scores, shard_rows=8, workers=2, journal_limit=4
        )
        try:
            client = ShardClient(pool)
            ref = ScoreStore(scores, shard_rows=8)
            for step in range(20):
                row, col = int(rng.integers(32)), int(rng.integers(32))
                value = float(rng.random())
                client.set_entry(row, col, value)
                ref.set_entry(row, col, value)
                assert pool.journal_length() < 4
            # Crash replay still works from the auto-checkpointed base.
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            client.set_entry(1, 2, 0.125)
            ref.set_entry(1, 2, 0.125)
            assert pool.stats.respawns == 1
            assert np.array_equal(client.to_array(), ref.to_array())
        finally:
            pool.close()

    def test_dense_commands_checkpoint_immediately(self):
        rng = np.random.default_rng(2)
        scores = rng.random((24, 24))
        pool = ShardWorkerPool(scores, shard_rows=8, workers=2)
        try:
            client = ShardClient(pool)
            ref = ScoreStore(scores, shard_rows=8)
            for _ in range(3):
                delta = rng.random((24, 24))
                client.add_dense(delta)
                ref.add_dense(delta)
                # The O(n^2) payload is never retained in the journal.
                assert pool.journal_length() == 0
            assert np.array_equal(client.to_array(), ref.to_array())
        finally:
            pool.close()
