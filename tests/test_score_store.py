"""Tests for repro.executor.score_store (the sharded executor layer)."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.executor import ScoreStore
from repro.graph.generators import erdos_renyi_digraph
from repro.incremental.plan import apply_plan_dense, plan_unit_update
from repro.graph.updates import EdgeUpdate
from repro.linalg.qstore import TransitionStore
from repro.simrank.matrix import matrix_simrank


def _random_scores(n, seed=0):
    rng = np.random.default_rng(seed)
    scores = rng.random((n, n))
    return (scores + scores.T) / 2.0


class TestReads:
    @pytest.mark.parametrize("shard_rows", [1, 3, 4, 100])
    def test_round_trip(self, shard_rows):
        scores = _random_scores(10)
        store = ScoreStore(scores, shard_rows=shard_rows)
        np.testing.assert_array_equal(store.to_array(), scores)

    def test_entry_row_column(self):
        scores = _random_scores(9)
        store = ScoreStore(scores, shard_rows=4)
        assert store.entry(7, 2) == scores[7, 2]
        np.testing.assert_array_equal(store.row(5), scores[5])
        np.testing.assert_array_equal(store.column(3), scores[:, 3])

    def test_getitem_duck_typing(self):
        scores = _random_scores(8)
        store = ScoreStore(scores, shard_rows=3)
        assert store[4, 6] == scores[4, 6]
        np.testing.assert_array_equal(store[:, 2], scores[:, 2])
        np.testing.assert_array_equal(store[6, :], scores[6])
        with pytest.raises(TypeError):
            store[1:3, 2]

    def test_matvec_matches_dense(self):
        scores = _random_scores(11)
        store = ScoreStore(scores, shard_rows=4)
        x = np.random.default_rng(1).random(11)
        np.testing.assert_array_equal(store.matvec(x), scores @ x)
        np.testing.assert_array_equal(store @ x, scores @ x)

    def test_column_into_out_buffer(self):
        scores = _random_scores(7)
        store = ScoreStore(scores, shard_rows=2)
        out = np.empty(7)
        result = store.column(4, out=out)
        assert result is out
        np.testing.assert_array_equal(out, scores[:, 4])

    def test_non_square_rejected(self):
        with pytest.raises(DimensionError):
            ScoreStore(np.zeros((3, 4)))

    def test_bad_shard_rows_rejected(self):
        with pytest.raises(DimensionError):
            ScoreStore(np.zeros((3, 3)), shard_rows=0)


class TestWrites:
    def test_add_dense_and_replace(self):
        scores = _random_scores(10)
        store = ScoreStore(scores, shard_rows=3)
        delta = _random_scores(10, seed=5)
        store.add_dense(delta)
        np.testing.assert_array_equal(store.to_array(), scores + delta)
        store.replace_dense(scores)
        np.testing.assert_array_equal(store.to_array(), scores)

    def test_set_entry(self):
        store = ScoreStore(np.zeros((6, 6)), shard_rows=2)
        store.set_entry(5, 1, 0.25)
        assert store.entry(5, 1) == 0.25

    def test_version_bumps_on_mutation(self):
        store = ScoreStore(np.zeros((4, 4)), shard_rows=2)
        v0 = store.version
        store.set_entry(0, 0, 1.0)
        store.add_dense(np.zeros((4, 4)))
        assert store.version == v0 + 2

    def test_apply_plan_matches_dense_executor(self, config):
        graph = erdos_renyi_digraph(40, 0.08, seed=11)
        tstore = TransitionStore.from_graph(graph)
        dense = matrix_simrank(tstore.csr_matrix(), config)
        target = 17
        source = next(
            node
            for node in range(graph.num_nodes)
            if node != target and not graph.has_edge(node, target)
        )
        update = EdgeUpdate.insert(source, target)
        plan = plan_unit_update(tstore, dense, update, graph, config)
        assert not plan.is_noop

        expected = dense.copy()
        apply_plan_dense(expected, plan)
        for shard_rows in (1, 4, 7, 64):
            store = ScoreStore(dense, shard_rows=shard_rows)
            store.apply_plan(plan)
            np.testing.assert_array_equal(store.to_array(), expected)


class TestGrowth:
    def test_add_node_grows_all_reads(self):
        scores = _random_scores(5)
        store = ScoreStore(scores, shard_rows=2)
        node = store.add_node()
        assert node == 5
        assert store.shape == (6, 6)
        grown = store.to_array()
        np.testing.assert_array_equal(grown[:5, :5], scores)
        assert not grown[5].any()
        assert not grown[:, 5].any()

    def test_node_stream_keeps_shard_invariant(self):
        store = ScoreStore(np.zeros((1, 1)), shard_rows=3)
        for _ in range(20):
            store.add_node()
        assert store.shape == (21, 21)
        assert store.num_shards == 7
        report = store.shard_report()
        assert [entry["rows"] for entry in report] == [3] * 6 + [3]
        store.set_entry(20, 20, 0.4)
        assert store.entry(20, 20) == 0.4


class TestCopyOnWrite:
    def test_snapshot_is_bit_stable_under_writes(self):
        scores = _random_scores(12)
        store = ScoreStore(scores, shard_rows=4)
        snap = store.snapshot()
        frozen = snap.to_array()
        store.add_dense(_random_scores(12, seed=9))
        store.set_entry(0, 0, 42.0)
        np.testing.assert_array_equal(snap.to_array(), frozen)
        np.testing.assert_array_equal(snap.to_array(), scores)
        assert snap.entry(0, 0) == scores[0, 0]
        np.testing.assert_array_equal(snap.row(3), scores[3])
        np.testing.assert_array_equal(snap.column(7), scores[:, 7])

    def test_only_touched_shards_are_copied(self, config):
        graph = erdos_renyi_digraph(60, 0.05, seed=2)
        tstore = TransitionStore.from_graph(graph)
        dense = matrix_simrank(tstore.csr_matrix(), config)
        store = ScoreStore(dense, shard_rows=8)
        store.snapshot()
        assert store.shared_shard_count() == store.num_shards
        store.set_entry(0, 0, 1.0)
        assert store.cow_copies == 1
        assert store.shared_shard_count() == store.num_shards - 1

    def test_snapshot_views_are_read_only(self):
        store = ScoreStore(_random_scores(6), shard_rows=2)
        snap = store.snapshot()
        with pytest.raises(ValueError):
            snap._views[0][0, 0] = 1.0

    def test_two_snapshots_without_writes_share_buffers(self):
        store = ScoreStore(_random_scores(6), shard_rows=2)
        first = store.snapshot()
        second = store.snapshot()
        assert first.version == second.version
        store.set_entry(1, 1, 9.0)
        np.testing.assert_array_equal(first.to_array(), second.to_array())

    def test_snapshot_versions_diverge(self):
        store = ScoreStore(_random_scores(6), shard_rows=2)
        old = store.snapshot()
        store.set_entry(2, 3, 7.0)
        new = store.snapshot()
        assert new.version > old.version
        assert old.entry(2, 3) != 7.0
        assert new.entry(2, 3) == 7.0


class TestAccounting:
    def test_bytes_and_report(self):
        store = ScoreStore(_random_scores(10), shard_rows=4)
        assert store.nbytes() == 10 * 10 * 8
        assert store.buffer_bytes() >= store.nbytes()
        report = store.shard_report()
        assert len(report) == store.num_shards == 3
        assert {entry["base"] for entry in report} == {0, 4, 8}
