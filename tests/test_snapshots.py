"""Tests for repro.graph.snapshots."""

import pytest

from repro.exceptions import GraphError
from repro.graph.snapshots import TimestampedGraph
from repro.graph.updates import UpdateKind


@pytest.fixture
def timeline() -> TimestampedGraph:
    graph = TimestampedGraph(5)
    graph.add_edge(0, 1, timestamp=0)
    graph.add_edge(1, 2, timestamp=0)
    graph.add_edge(2, 3, timestamp=1)
    graph.add_edge(3, 4, timestamp=2)
    graph.add_edge(0, 4, timestamp=2)
    return graph


class TestSnapshotAt:
    def test_snapshot_filters_by_arrival(self, timeline):
        snap0 = timeline.snapshot_at(0)
        assert snap0.num_edges == 2
        snap1 = timeline.snapshot_at(1)
        assert snap1.num_edges == 3
        snap2 = timeline.snapshot_at(2)
        assert snap2.num_edges == 5

    def test_snapshot_before_everything_is_empty(self, timeline):
        assert timeline.snapshot_at(-1).num_edges == 0

    def test_expiry_removes_edge(self, timeline):
        timeline.expire_edge(0, 1, timestamp=2)
        assert timeline.snapshot_at(1).has_edge(0, 1)
        assert not timeline.snapshot_at(2).has_edge(0, 1)

    def test_timestamps_sorted_unique(self, timeline):
        assert timeline.timestamps() == [0, 1, 2]


class TestDeltaBetween:
    def test_delta_matches_snapshots(self, timeline):
        delta = timeline.delta_between(0, 2)
        reconstructed = delta.applied(timeline.snapshot_at(0))
        assert reconstructed == timeline.snapshot_at(2)

    def test_delta_with_expiry_has_deletion_first(self, timeline):
        timeline.expire_edge(0, 1, timestamp=2)
        delta = timeline.delta_between(1, 2)
        kinds = [update.kind for update in delta]
        assert kinds[0] is UpdateKind.DELETE
        assert UpdateKind.INSERT in kinds
        assert delta.applied(timeline.snapshot_at(1)) == timeline.snapshot_at(2)

    def test_backwards_delta_rejected(self, timeline):
        with pytest.raises(GraphError):
            timeline.delta_between(2, 1)

    def test_empty_delta_for_same_time(self, timeline):
        assert len(timeline.delta_between(1, 1)) == 0


class TestSnapshotSeries:
    def test_series_chains_deltas(self, timeline):
        series = timeline.snapshot_series([0, 1, 2])
        assert len(series) == 3
        current = TimestampedGraph(5).snapshot_at(0)  # empty graph
        for snapshot, delta in series:
            current = delta.applied(current)
            assert current == snapshot


class TestValidation:
    def test_duplicate_edge_rejected(self):
        graph = TimestampedGraph(3)
        graph.add_edge(0, 1, timestamp=0)
        with pytest.raises(GraphError):
            graph.add_edge(0, 1, timestamp=1)

    def test_out_of_range_edge_rejected(self):
        graph = TimestampedGraph(3)
        with pytest.raises(GraphError):
            graph.add_edge(0, 5, timestamp=0)

    def test_expire_unknown_edge_rejected(self):
        graph = TimestampedGraph(3)
        with pytest.raises(GraphError):
            graph.expire_edge(0, 1, timestamp=1)

    def test_expire_before_arrival_rejected(self):
        graph = TimestampedGraph(3)
        graph.add_edge(0, 1, timestamp=2)
        with pytest.raises(GraphError):
            graph.expire_edge(0, 1, timestamp=2)

    def test_from_timed_edges(self):
        graph = TimestampedGraph.from_timed_edges(3, [(0, 1, 0), (1, 2, 1)])
        assert graph.num_edges == 2
        assert graph.snapshot_at(0).num_edges == 1
