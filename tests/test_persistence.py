"""Tests for DynamicSimRank.save/load."""

import numpy as np
import pytest

from repro import DynamicSimRank, SimRankConfig
from repro.graph.updates import EdgeUpdate
from repro.simrank.matrix import matrix_simrank


class TestSaveLoad:
    def test_roundtrip_preserves_state(self, cyclic_graph, tmp_path):
        config = SimRankConfig(damping=0.7, iterations=12)
        engine = DynamicSimRank(cyclic_graph, config, algorithm="inc-sr")
        engine.apply(EdgeUpdate.insert(4, 2))
        path = str(tmp_path / "session.npz")
        engine.save(path)

        restored = DynamicSimRank.load(path)
        assert restored.graph == engine.graph
        assert restored.config == config
        assert restored.algorithm == "inc-sr"
        np.testing.assert_allclose(
            restored.similarities(), engine.similarities()
        )

    def test_restored_session_keeps_updating(self, cyclic_graph, tmp_path):
        config = SimRankConfig(damping=0.6, iterations=25)
        engine = DynamicSimRank(cyclic_graph, config)
        path = str(tmp_path / "session.npz")
        engine.save(path)

        restored = DynamicSimRank.load(path)
        restored.apply(EdgeUpdate.insert(4, 2))
        live = cyclic_graph.copy()
        live.add_edge(4, 2)
        truth = matrix_simrank(live, config)
        np.testing.assert_allclose(
            restored.similarities(), truth, atol=1e-4
        )

    def test_q_matrix_rebuilt_consistently(self, random_graph, tmp_path):
        from repro.graph.transition import verify_transition_matrix

        engine = DynamicSimRank(random_graph, SimRankConfig(0.6, 5))
        path = str(tmp_path / "session.npz")
        engine.save(path)
        restored = DynamicSimRank.load(path)
        assert (
            verify_transition_matrix(restored.transition_matrix, restored.graph)
            is None
        )

    def test_consolidated_requires_inc_sr(self, cyclic_graph, config):
        from repro.exceptions import ConfigError
        from repro.graph.updates import UpdateBatch

        engine = DynamicSimRank(cyclic_graph, config, algorithm="inc-usr")
        with pytest.raises(ConfigError):
            engine.apply_consolidated(UpdateBatch([EdgeUpdate.insert(4, 2)]))

    def test_engine_consolidated_matches_unit(self, random_graph):
        from repro.graph.generators import random_insertions

        config = SimRankConfig(damping=0.6, iterations=20)
        batch = random_insertions(random_graph, 6, seed=31)
        unit = DynamicSimRank(random_graph, config, algorithm="inc-sr")
        unit.apply(batch)
        consolidated = DynamicSimRank(random_graph, config, algorithm="inc-sr")
        groups = consolidated.apply_consolidated(batch)
        assert groups <= len(batch)
        np.testing.assert_allclose(
            unit.similarities(), consolidated.similarities(), atol=1e-4
        )
        assert consolidated.graph == unit.graph
