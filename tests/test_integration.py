"""End-to-end integration tests across subsystems at realistic scale.

These exercise the full pipeline the way a downstream user would: build
an evolving dataset, precompute, stream updates through every algorithm,
persist/restore mid-stream, and validate against batch recomputation.
"""

import numpy as np
import pytest

from repro import DynamicSimRank, SimRankConfig
from repro.datasets.citation import dblp_like
from repro.datasets.video import youtube_like
from repro.graph.generators import random_deletions, random_insertions
from repro.graph.updates import UpdateBatch
from repro.metrics.ndcg import ndcg_at_k
from repro.metrics.topk_tracker import TopKTracker
from repro.simrank.matrix import matrix_simrank


class TestCitationPipeline:
    def test_year_replay_matches_batch(self):
        """Replay two snapshot years incrementally; compare with batch."""
        corpus = dblp_like(num_papers=180, num_years=6)
        years = corpus.timestamps()
        base_year = years[-3]
        config = SimRankConfig(damping=0.6, iterations=15)
        engine = DynamicSimRank(corpus.snapshot_at(base_year), config)
        for year in years[-2:]:
            delta = corpus.delta_between(year - 1, year)
            engine.apply(delta)
        final = corpus.snapshot_at(years[-1])
        assert engine.graph == final
        truth = matrix_simrank(final, config)
        assert ndcg_at_k(engine.similarities(), truth, k=30) == pytest.approx(
            1.0, abs=1e-9
        )
        np.testing.assert_allclose(
            engine.similarities(), truth, atol=5e-3
        )

    def test_consolidated_replay_agrees_with_unit_replay(self):
        corpus = dblp_like(num_papers=150, num_years=6)
        years = corpus.timestamps()
        base = corpus.snapshot_at(years[-2])
        delta = corpus.delta_between(years[-2], years[-1])
        config = SimRankConfig(damping=0.6, iterations=15)
        initial = matrix_simrank(base, config)
        unit = DynamicSimRank(
            base, config, algorithm="inc-sr", initial_scores=initial
        )
        unit.apply(delta)
        consolidated = DynamicSimRank(
            base, config, algorithm="inc-sr", initial_scores=initial
        )
        groups = consolidated.apply_consolidated(delta)
        assert groups < len(delta)  # citation arrivals share targets
        np.testing.assert_allclose(
            unit.similarities(), consolidated.similarities(), atol=1e-3
        )


class TestChurnPipeline:
    def test_cyclic_graph_mixed_churn(self):
        """YOUTU-style cyclic graph with mixed deletions and insertions."""
        corpus = youtube_like(num_videos=160, num_ages=4)
        base = corpus.snapshot_at(corpus.timestamps()[-1])
        config = SimRankConfig(damping=0.6, iterations=20)
        churn = UpdateBatch(
            list(random_deletions(base, 8, seed=41))
            + list(random_insertions(base, 8, seed=42))
        )
        engine = DynamicSimRank(base, config, algorithm="inc-sr")
        tracker = TopKTracker(engine, k=10)
        engine.apply(churn)
        tracker.refresh()
        assert len(tracker.current()) == 10
        truth = matrix_simrank(churn.applied(base), config)
        np.testing.assert_allclose(engine.similarities(), truth, atol=1e-3)

    def test_persist_mid_stream_and_continue(self, tmp_path):
        """Save after half the stream, restore, finish — same endpoint."""
        corpus = youtube_like(num_videos=120, num_ages=4)
        base = corpus.snapshot_at(corpus.timestamps()[-1])
        config = SimRankConfig(damping=0.6, iterations=20)
        stream = list(random_insertions(base, 10, seed=43))
        direct = DynamicSimRank(base, config)
        direct.apply(UpdateBatch(stream))

        staged = DynamicSimRank(base, config)
        staged.apply(UpdateBatch(stream[:5]))
        path = str(tmp_path / "mid.npz")
        staged.save(path)
        resumed = DynamicSimRank.load(path)
        resumed.apply(UpdateBatch(stream[5:]))
        assert resumed.graph == direct.graph
        np.testing.assert_allclose(
            resumed.similarities(), direct.similarities(), atol=1e-10
        )


class TestCrossAlgorithmConsistency:
    def test_all_three_engines_converge_together(self):
        corpus = dblp_like(num_papers=120, num_years=5)
        base = corpus.snapshot_at(corpus.timestamps()[-2])
        config = SimRankConfig(damping=0.6, iterations=25)
        batch = UpdateBatch(
            list(random_deletions(base, 4, seed=44))
            + list(random_insertions(base, 6, seed=45))
        )
        results = {}
        for algorithm in ("inc-sr", "inc-usr", "batch"):
            engine = DynamicSimRank(base, config, algorithm=algorithm)
            engine.apply(batch)
            results[algorithm] = engine.similarities()
        np.testing.assert_allclose(
            results["inc-sr"], results["inc-usr"], atol=1e-10
        )
        np.testing.assert_allclose(
            results["inc-sr"], results["batch"], atol=1e-4
        )
