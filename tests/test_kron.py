"""Tests for repro.linalg.kron."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.linalg.kron import exact_simrank_kron, solve_sylvester_kron, unvec, vec


class TestVecUnvec:
    def test_vec_is_column_stacking(self):
        matrix = np.array([[1.0, 3.0], [2.0, 4.0]])
        np.testing.assert_array_equal(vec(matrix), [1.0, 2.0, 3.0, 4.0])

    def test_unvec_inverts_vec(self):
        rng = np.random.default_rng(0)
        matrix = rng.random((3, 5))
        np.testing.assert_array_equal(unvec(vec(matrix), 3, 5), matrix)

    def test_vec_rejects_non_matrix(self):
        with pytest.raises(DimensionError):
            vec(np.zeros(3))

    def test_unvec_rejects_bad_size(self):
        with pytest.raises(DimensionError):
            unvec(np.zeros(5), 2, 3)


class TestSolveSylvesterKron:
    def test_solution_satisfies_equation(self):
        rng = np.random.default_rng(1)
        n = 6
        a = 0.3 * rng.random((n, n))  # spectral radius < 1 keeps it solvable
        b = 0.3 * rng.random((n, n))
        c = rng.random((n, n))
        x = solve_sylvester_kron(a, b, c)
        np.testing.assert_allclose(x, a @ x @ b + c, atol=1e-10)

    def test_matches_truncated_series(self):
        rng = np.random.default_rng(2)
        n = 5
        a = 0.2 * rng.random((n, n))
        b = 0.2 * rng.random((n, n))
        c = rng.random((n, n))
        series = c.copy()
        term = c.copy()
        for _ in range(60):
            term = a @ term @ b
            series += term
        x = solve_sylvester_kron(a, b, c)
        np.testing.assert_allclose(x, series, atol=1e-12)

    def test_accepts_sparse_inputs(self):
        import scipy.sparse as sp

        a = sp.random(5, 5, density=0.3, random_state=3) * 0.3
        b = sp.random(5, 5, density=0.3, random_state=4) * 0.3
        c = np.eye(5)
        x = solve_sylvester_kron(a, b, c)
        np.testing.assert_allclose(
            x, (a @ x @ b) + c, atol=1e-10
        )

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(DimensionError):
            solve_sylvester_kron(np.zeros((2, 2)), np.zeros((3, 3)), np.zeros((2, 2)))
        with pytest.raises(DimensionError):
            solve_sylvester_kron(np.zeros((2, 2)), np.zeros((2, 2)), np.zeros((3, 3)))


class TestExactSimRankKron:
    def test_fixed_point_property(self, diamond_graph, config):
        from repro.graph.transition import backward_transition_matrix

        q = backward_transition_matrix(diamond_graph)
        s = exact_simrank_kron(q, config.damping)
        expected = config.damping * (q @ s @ q.T).toarray() if hasattr(
            q @ s @ q.T, "toarray"
        ) else config.damping * (q @ s @ q.T)
        expected = np.asarray(expected) + (1 - config.damping) * np.eye(4)
        np.testing.assert_allclose(s, expected, atol=1e-12)

    def test_diamond_values(self, diamond_graph):
        # On the diamond with C=0.8: s(1,2) solves the 2x2 closed form.
        s = exact_simrank_kron(
            __import__(
                "repro.graph.transition", fromlist=["backward_transition_matrix"]
            ).backward_transition_matrix(diamond_graph),
            0.8,
        )
        # I(1) = I(2) = {0}: s(1,2) = C*s(0,0); s(0,0) = 1-C (no in-links).
        assert s[1, 2] == pytest.approx(0.8 * s[0, 0])
        assert s[0, 0] == pytest.approx(0.2)
