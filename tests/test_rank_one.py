"""Tests for repro.incremental.rank_one (Theorem 1)."""

import numpy as np
import pytest

from repro.exceptions import EdgeExistsError, EdgeNotFoundError
from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import erdos_renyi_digraph
from repro.graph.transition import backward_transition_matrix
from repro.graph.updates import EdgeUpdate
from repro.incremental.rank_one import (
    delta_q_dense,
    rank_one_decomposition,
    target_in_degree,
    validate_update,
)


def materialized_delta(graph, update):
    """Ground truth ΔQ = Q(new) − Q(old), densely."""
    old_q = backward_transition_matrix(graph).toarray()
    new_graph = graph.copy()
    update.apply_to(new_graph)
    new_q = backward_transition_matrix(new_graph).toarray()
    return new_q - old_q


class TestTheorem1Insertion:
    def test_insert_into_zero_degree_target(self, diamond_graph):
        # Node 0 has in-degree 0; insert 3 -> 0.
        update = EdgeUpdate.insert(3, 0)
        u, v = rank_one_decomposition(diamond_graph, update)
        # u = e_j, v = e_i.
        np.testing.assert_array_equal(u, [1.0, 0, 0, 0])
        np.testing.assert_array_equal(v, [0, 0, 0, 1.0])
        np.testing.assert_allclose(
            np.outer(u, v), materialized_delta(diamond_graph, update)
        )

    def test_insert_into_positive_degree_target(self, diamond_graph):
        # Node 3 has in-degree 2; insert 0 -> 3.
        update = EdgeUpdate.insert(0, 3)
        u, v = rank_one_decomposition(diamond_graph, update)
        assert u[3] == pytest.approx(1.0 / 3.0)  # 1/(d_j + 1)
        np.testing.assert_allclose(
            np.outer(u, v), materialized_delta(diamond_graph, update)
        )

    def test_paper_example_4_shape(self):
        """Example 4: d_j = 2 gives u = e_j/3 and v = e_i − [Q]ᵀ_{j,:}."""
        graph = DynamicDiGraph.from_edges(6, [(4, 5), (3, 5)])  # I(5)={3,4}
        update = EdgeUpdate.insert(0, 5)
        u, v = rank_one_decomposition(graph, update)
        np.testing.assert_allclose(u, [0, 0, 0, 0, 0, 1 / 3])
        np.testing.assert_allclose(v, [1.0, 0, 0, -0.5, -0.5, 0])


class TestTheorem1Deletion:
    def test_delete_last_in_edge(self, diamond_graph):
        # Node 1 has in-degree 1; delete 0 -> 1.
        update = EdgeUpdate.delete(0, 1)
        u, v = rank_one_decomposition(diamond_graph, update)
        np.testing.assert_array_equal(u, [0, 1.0, 0, 0])
        np.testing.assert_array_equal(v, [-1.0, 0, 0, 0])
        np.testing.assert_allclose(
            np.outer(u, v), materialized_delta(diamond_graph, update)
        )

    def test_delete_from_higher_degree_target(self, diamond_graph):
        # Node 3 has in-degree 2; delete 1 -> 3.
        update = EdgeUpdate.delete(1, 3)
        u, v = rank_one_decomposition(diamond_graph, update)
        assert u[3] == pytest.approx(1.0)  # 1/(d_j − 1) with d_j = 2
        np.testing.assert_allclose(
            np.outer(u, v), materialized_delta(diamond_graph, update)
        )


class TestTheorem1Randomized:
    @pytest.mark.parametrize("seed", range(6))
    def test_every_applicable_update_factorizes(self, seed):
        graph = erdos_renyi_digraph(20, 0.15, seed=seed)
        rng = np.random.default_rng(seed)
        edges = sorted(graph.edge_set())
        non_edges = [
            (s, t)
            for s in range(20)
            for t in range(20)
            if s != t and (s, t) not in graph.edge_set()
        ]
        updates = []
        if edges:
            s, t = edges[int(rng.integers(len(edges)))]
            updates.append(EdgeUpdate.delete(s, t))
        s, t = non_edges[int(rng.integers(len(non_edges)))]
        updates.append(EdgeUpdate.insert(s, t))
        for update in updates:
            u, v = rank_one_decomposition(graph, update)
            np.testing.assert_allclose(
                np.outer(u, v),
                materialized_delta(graph, update),
                atol=1e-12,
                err_msg=f"seed={seed}, update={update}",
            )

    def test_self_loop_updates(self):
        graph = DynamicDiGraph.from_edges(3, [(0, 1), (1, 2)])
        insert = EdgeUpdate.insert(2, 2)
        u, v = rank_one_decomposition(graph, insert)
        np.testing.assert_allclose(
            np.outer(u, v), materialized_delta(graph, insert)
        )


class TestValidation:
    def test_insert_existing_rejected(self, diamond_graph):
        with pytest.raises(EdgeExistsError):
            rank_one_decomposition(diamond_graph, EdgeUpdate.insert(0, 1))

    def test_delete_missing_rejected(self, diamond_graph):
        with pytest.raises(EdgeNotFoundError):
            rank_one_decomposition(diamond_graph, EdgeUpdate.delete(3, 0))

    def test_validate_update_passes_good(self, diamond_graph):
        validate_update(diamond_graph, EdgeUpdate.insert(3, 0))
        validate_update(diamond_graph, EdgeUpdate.delete(0, 1))

    def test_target_in_degree(self, diamond_graph):
        assert target_in_degree(diamond_graph, EdgeUpdate.insert(0, 3)) == 2
        assert target_in_degree(diamond_graph, EdgeUpdate.insert(3, 0)) == 0

    def test_delta_q_dense_helper(self, diamond_graph):
        update = EdgeUpdate.insert(0, 3)
        np.testing.assert_allclose(
            delta_q_dense(diamond_graph, update),
            materialized_delta(diamond_graph, update),
        )
