"""Tests for repro.incremental.inc_usr (Algorithm 1)."""

import numpy as np
import pytest

from repro import SimRankConfig
from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import erdos_renyi_digraph
from repro.graph.transition import backward_transition_matrix
from repro.graph.updates import EdgeUpdate
from repro.incremental.inc_usr import inc_usr_update
from repro.simrank.exact import exact_simrank, truncation_error_bound


def run_unit_update(graph, update, config, use_exact_initial=True):
    """Helper: run Inc-uSR from exact old scores; return (new_s, truth)."""
    q = backward_transition_matrix(graph)
    s_old = exact_simrank(graph, config)
    result = inc_usr_update(graph, q, s_old, update, config)
    new_graph = graph.copy()
    update.apply_to(new_graph)
    truth = exact_simrank(new_graph, config)
    return result, truth


class TestInsertion:
    def test_insert_positive_degree_target(self, cyclic_graph):
        config = SimRankConfig(damping=0.6, iterations=30)
        result, truth = run_unit_update(
            cyclic_graph, EdgeUpdate.insert(4, 2), config
        )
        tolerance = 2 * truncation_error_bound(config)
        np.testing.assert_allclose(result.new_s, truth, atol=tolerance)

    def test_insert_zero_degree_target(self, diamond_graph):
        config = SimRankConfig(damping=0.8, iterations=40)
        result, truth = run_unit_update(
            diamond_graph, EdgeUpdate.insert(3, 0), config
        )
        np.testing.assert_allclose(
            result.new_s, truth, atol=2 * truncation_error_bound(config)
        )

    def test_delta_is_symmetric(self, cyclic_graph, config):
        result, _ = run_unit_update(cyclic_graph, EdgeUpdate.insert(4, 2), config)
        np.testing.assert_allclose(
            result.delta_s, result.delta_s.T, atol=1e-12
        )

    def test_unaffected_pairs_unchanged_on_dag(self):
        """On a disconnected union, the untouched component must not move."""
        # Component A: 0 -> 1 -> 2; component B: 3 -> 4.
        graph = DynamicDiGraph.from_edges(5, [(0, 1), (1, 2), (3, 4)])
        config = SimRankConfig(damping=0.6, iterations=20)
        result, _ = run_unit_update(graph, EdgeUpdate.insert(2, 0), config)
        assert np.max(np.abs(result.delta_s[3:, 3:])) < 1e-14


class TestDeletion:
    def test_delete_to_zero_degree(self, diamond_graph):
        config = SimRankConfig(damping=0.8, iterations=40)
        result, truth = run_unit_update(
            diamond_graph, EdgeUpdate.delete(0, 1), config
        )
        np.testing.assert_allclose(
            result.new_s, truth, atol=2 * truncation_error_bound(config)
        )

    def test_delete_from_degree_two(self, diamond_graph):
        config = SimRankConfig(damping=0.8, iterations=40)
        result, truth = run_unit_update(
            diamond_graph, EdgeUpdate.delete(1, 3), config
        )
        np.testing.assert_allclose(
            result.new_s, truth, atol=2 * truncation_error_bound(config)
        )

    def test_insert_then_delete_is_identity(self, cyclic_graph, config):
        q = backward_transition_matrix(cyclic_graph)
        s_old = exact_simrank(cyclic_graph, config)
        insert = EdgeUpdate.insert(4, 2)
        mid = inc_usr_update(cyclic_graph, q, s_old, insert, config)
        new_graph = cyclic_graph.copy()
        insert.apply_to(new_graph)
        new_q = backward_transition_matrix(new_graph)
        back = inc_usr_update(
            new_graph, new_q, mid.new_s, EdgeUpdate.delete(4, 2), config
        )
        # ΔS(+e) followed by ΔS(−e) should cancel to iteration precision.
        np.testing.assert_allclose(
            back.new_s, s_old, atol=4 * truncation_error_bound(config)
        )


class TestRandomizedAgainstExact:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_updates_match_exact(self, seed):
        graph = erdos_renyi_digraph(22, 0.12, seed=seed)
        config = SimRankConfig(damping=0.6, iterations=30)
        rng = np.random.default_rng(seed + 100)
        edges = sorted(graph.edge_set())
        update = EdgeUpdate.delete(*edges[int(rng.integers(len(edges)))])
        result, truth = run_unit_update(graph, update, config)
        np.testing.assert_allclose(
            result.new_s, truth, atol=2 * truncation_error_bound(config)
        )

    def test_dag_is_exact_to_machine_precision(self, citation_graph, config):
        """On DAGs Q is nilpotent, so the truncated series is exact."""
        result, truth = run_unit_update(
            citation_graph, EdgeUpdate.insert(5, 40), config
        )
        np.testing.assert_allclose(result.new_s, truth, atol=1e-10)


class TestResultStructure:
    def test_vectors_populated(self, cyclic_graph, config):
        result, _ = run_unit_update(cyclic_graph, EdgeUpdate.insert(4, 2), config)
        assert result.vectors.u.shape == (cyclic_graph.num_nodes,)
        assert result.vectors.gamma.shape == (cyclic_graph.num_nodes,)
        assert result.affected is None  # Inc-uSR does not track pruning

    def test_inputs_not_mutated(self, cyclic_graph, config):
        q = backward_transition_matrix(cyclic_graph)
        s_old = exact_simrank(cyclic_graph, config)
        s_snapshot = s_old.copy()
        q_snapshot = q.toarray()
        inc_usr_update(cyclic_graph, q, s_old, EdgeUpdate.insert(4, 2), config)
        np.testing.assert_array_equal(s_old, s_snapshot)
        np.testing.assert_array_equal(q.toarray(), q_snapshot)
        assert not cyclic_graph.has_edge(4, 2)
