"""Tests for repro.bench (harness, reporting, experiments, CLI)."""

import numpy as np
import pytest

from repro.bench.experiments import EXPERIMENTS, fig1, fig2b, fig2e, fig4, run_experiment
from repro.bench.harness import Table, format_seconds, speedup, timed
from repro.bench.reporting import format_table
from repro.exceptions import ConfigError


class TestHarness:
    def test_timed_returns_result_and_duration(self):
        result, seconds = timed(lambda: 41 + 1)
        assert result == 42
        assert seconds >= 0.0

    def test_table_row_arity_checked(self):
        table = Table(title="t", headers=["a", "b"])
        table.add_row(1, 2)
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_table_column_extraction(self):
        table = Table(title="t", headers=["a", "b"])
        table.add_row(1, "x")
        table.add_row(2, "y")
        assert table.column("a") == [1, 2]
        assert table.column("b") == ["x", "y"]

    def test_format_seconds(self):
        assert format_seconds(0.5e-3).endswith("us")
        assert format_seconds(0.05).endswith("ms")
        assert format_seconds(2.0).endswith("s")

    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        assert speedup(10.0, 0.0) is None


class TestReporting:
    def test_format_table_contains_everything(self):
        table = Table(title="My Title", headers=["col1", "col2"])
        table.add_row("value", 0.125)
        table.add_note("a footnote")
        text = format_table(table)
        assert "My Title" in text
        assert "col1" in text
        assert "value" in text
        assert "0.1250" in text
        assert "* a footnote" in text


class TestExperiments:
    def test_registry_covers_every_figure(self):
        assert set(EXPERIMENTS) == {
            "fig1",
            "fig2a",
            "fig2b",
            "fig2c",
            "fig2d",
            "fig2e",
            "fig3",
            "fig4",
            "abl-tolerance",
            "abl-order",
            "abl-iterations",
            "abl-consolidation",
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigError):
            run_experiment("fig99")

    def test_bad_scale_rejected(self):
        with pytest.raises(ConfigError):
            fig2e(scale="huge")

    def test_fig1_incsr_exact_and_incsvd_not(self):
        table = fig1()
        true_col = np.asarray(table.column("sim_true"), dtype=float)
        sr_col = np.asarray(table.column("sim_IncSR"), dtype=float)
        svd_col = np.asarray(table.column("sim_IncSVD"), dtype=float)
        np.testing.assert_allclose(sr_col, true_col, atol=1e-3)
        assert np.max(np.abs(svd_col - true_col)) > 1e-2

    def test_fig1_insertion_changes_some_pairs_not_others(self):
        table = fig1()
        old = np.asarray(table.column("sim (old G)"), dtype=float)
        new = np.asarray(table.column("sim_true"), dtype=float)
        changed = np.abs(old - new) > 1e-6
        assert changed.any()
        assert (~changed).any()

    def test_fig2b_rank_not_negligible(self):
        table = fig2b("tiny")
        fractions = np.asarray(table.column("% of n"), dtype=float)
        # The paper's point: r is a large fraction of n (not << n).
        assert np.all(fractions > 20.0)

    def test_fig2e_affected_fraction_small(self):
        table = fig2e("tiny")
        fractions = np.asarray(table.column("% affected"), dtype=float)
        assert np.all(fractions < 50.0)
        assert np.all(fractions >= 0.0)

    def test_fig4_incsr_beats_incsvd(self):
        table = fig4("tiny")
        for row in table.rows:
            by_header = dict(zip(table.headers, row))
            assert by_header["Inc-SR(K=15)"] >= by_header["Inc-SVD(r=5)"]
            # lossless pruning: Inc-SR == Inc-uSR at each K
            assert by_header["Inc-SR(K=15)"] == pytest.approx(
                by_header["Inc-uSR(K=15)"], abs=1e-9
            )
            assert by_header["Inc-SR(K=5)"] == pytest.approx(
                by_header["Inc-uSR(K=5)"], abs=1e-9
            )


class TestCLI:
    def test_main_runs_single_experiment(self, capsys):
        from repro.bench.cli import main

        exit_code = main(["fig1"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Fig. 1" in captured.out
