"""Property-based tests for the extension modules.

Covers the generalized row update (composite rank-one factorization and
its agreement with the unit path), single-source queries against the
full matrix, and top-k tracker consistency.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SimRankConfig
from repro.graph.digraph import DynamicDiGraph
from repro.graph.transition import backward_transition_matrix
from repro.graph.updates import UpdateBatch
from repro.incremental.row_update import (
    apply_consolidated_batch,
    consolidate_batch,
    row_rank_one_vectors,
)
from repro.metrics.topk import top_k_pairs
from repro.simrank.matrix import matrix_simrank
from repro.simrank.queries import single_pair_simrank, single_source_simrank

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def small_digraphs(draw, min_nodes=3, max_nodes=10):
    n = draw(st.integers(min_nodes, max_nodes))
    pairs = [(s, t) for s in range(n) for t in range(n) if s != t]
    edges = draw(
        st.lists(st.sampled_from(pairs), unique=True, max_size=min(25, len(pairs)))
    )
    return DynamicDiGraph.from_edges(n, edges)


@st.composite
def graphs_with_row_update(draw):
    """A graph plus a composite row update touching one target."""
    graph = draw(small_digraphs())
    n = graph.num_nodes
    target = draw(st.integers(0, n - 1))
    in_set = set(graph.in_neighbors(target))
    candidates_add = sorted(set(range(n)) - in_set - {target})
    candidates_remove = sorted(in_set)
    added = tuple(
        draw(
            st.lists(
                st.sampled_from(candidates_add) if candidates_add else st.nothing(),
                unique=True,
                max_size=3,
            )
        )
        if candidates_add
        else []
    )
    removed = tuple(
        draw(
            st.lists(
                st.sampled_from(candidates_remove)
                if candidates_remove
                else st.nothing(),
                unique=True,
                max_size=2,
            )
        )
        if candidates_remove
        else []
    )
    from repro.incremental.row_update import RowUpdate

    return graph, RowUpdate(target=target, added=added, removed=removed)


@SETTINGS
@given(graphs_with_row_update())
def test_composite_row_update_is_rank_one(case):
    """u·vᵀ equals the materialized composite ΔQ for any row change."""
    graph, row_update = case
    u, v = row_rank_one_vectors(graph, row_update)
    old_q = backward_transition_matrix(graph).toarray()
    new_graph = graph.copy()
    row_update.apply_to(new_graph)
    new_q = backward_transition_matrix(new_graph).toarray()
    np.testing.assert_allclose(np.outer(u, v), new_q - old_q, atol=1e-12)


@SETTINGS
@given(small_digraphs())
def test_consolidation_preserves_final_graph(graph):
    """Consolidated application reaches the same graph as unit updates."""
    n = graph.num_nodes
    insertions = [
        (s, t)
        for s in range(n)
        for t in range(n)
        if s != t and not graph.has_edge(s, t)
    ][:4]
    deletions = sorted(graph.edge_set())[:2]
    from repro.graph.updates import EdgeUpdate

    batch = UpdateBatch(
        [EdgeUpdate.delete(*e) for e in deletions]
        + [EdgeUpdate.insert(*e) for e in insertions]
    )
    config = SimRankConfig(damping=0.6, iterations=8)
    q = backward_transition_matrix(graph)
    s_matrix = matrix_simrank(graph, config)
    _, _, new_graph, groups = apply_consolidated_batch(
        graph, q, s_matrix, batch, config
    )
    assert new_graph == batch.applied(graph)
    assert groups == len(consolidate_batch(batch, graph))


@SETTINGS
@given(small_digraphs(), st.data())
def test_single_source_equals_matrix_row(graph, data):
    """Query path and full matrix agree on every row."""
    config = SimRankConfig(damping=0.6, iterations=10)
    node = data.draw(st.integers(0, graph.num_nodes - 1))
    full = matrix_simrank(graph, config)
    row = single_source_simrank(graph, node, config)
    np.testing.assert_allclose(row, full[node], atol=1e-10)


@SETTINGS
@given(small_digraphs(), st.data())
def test_single_pair_symmetric_and_consistent(graph, data):
    """Pair queries are symmetric and match the matrix entry."""
    config = SimRankConfig(damping=0.7, iterations=10)
    a = data.draw(st.integers(0, graph.num_nodes - 1))
    b = data.draw(st.integers(0, graph.num_nodes - 1))
    full = matrix_simrank(graph, config)
    forward = single_pair_simrank(graph, a, b, config)
    backward = single_pair_simrank(graph, b, a, config)
    assert abs(forward - backward) < 1e-12
    assert abs(forward - full[a, b]) < 1e-10


@SETTINGS
@given(small_digraphs(), st.integers(1, 6))
def test_top_k_pairs_sorted_and_unique(graph, k):
    """Rankings are sorted, deduplicated, and canonicalized (a < b)."""
    config = SimRankConfig(damping=0.6, iterations=8)
    scores = matrix_simrank(graph, config)
    top = top_k_pairs(scores, k)
    assert len(top) == len(set((a, b) for a, b, _ in top))
    values = [score for _, _, score in top]
    assert values == sorted(values, reverse=True)
    for a, b, _ in top:
        assert a < b
