"""Chaos soak: seeded fault schedules against a fault-free oracle.

The dichotomy the robustness layer promises, checked per seed:
every deterministic fault schedule (crashes, stalls, staging failures,
payload corruption, poison batches) must leave the service either

* **bit-identical** to a fault-free in-process run of the same drain
  sequence (all faults were recoverable and recovery was exactly-once),
  or
* in a **clean degraded state**: mutations refused with the typed
  error, reads served from a consistent (never torn) view, gauges
  reporting the quarantine,

and in both cases with zero leaked shm segments (the module-wide
``shm_guard`` diff asserts that after every test, including the kills).

Schedules are pure data (`FaultPlan.seeded`), so every run here is
reproducible from its printed seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SimRankConfig
from repro.cluster import FaultAction, FaultPlan
from repro.exceptions import DegradedModeError, PoolUnrecoverableError
from repro.graph.generators import erdos_renyi_digraph
from repro.graph.updates import EdgeUpdate
from repro.serving import SimRankService
from repro.simrank.matrix import matrix_simrank

from _streams import random_update_stream

pytestmark = pytest.mark.usefixtures("shm_guard")

CFG = SimRankConfig(damping=0.6, iterations=7)
CHUNK = 4


@pytest.fixture(scope="module")
def workload():
    graph = erdos_renyi_digraph(48, 0.06, seed=23)
    scores = matrix_simrank(graph, CFG)
    updates = random_update_stream(graph, 12, seed=29)
    oracle = _oracle(graph, scores, updates, CHUNK)
    return graph, scores, updates, oracle


def _oracle(graph, scores, updates, chunk):
    """Fault-free in-process run with the same drain boundaries."""
    service = SimRankService(graph, CFG, initial_scores=scores)
    try:
        for begin in range(0, len(updates), chunk):
            service.submit_many(updates[begin : begin + chunk])
            service.drain()
        return service.engine.similarities()
    finally:
        service.close()


def _pool_service(graph, scores, plan, **kwargs):
    return SimRankService(
        graph,
        CFG,
        initial_scores=scores,
        shard_rows=16,
        executor="process",
        workers=2,
        executor_options={"fault_plan": plan, **kwargs.pop("options", {})},
        **kwargs,
    )


def _drive(service, updates, chunk=CHUNK):
    """Drain the stream in chunks with a read sync point per chunk.

    Batched dispatch is pipelined, so a chunk's failure often surfaces
    at the next sync point; the snapshot per chunk both advances the
    pool's command clock (so mid-horizon schedule entries fire) and
    forces detection.  Stops early once the pool is unrecoverable.
    """
    for begin in range(0, len(updates), chunk):
        try:
            service.submit_many(updates[begin : begin + chunk])
            service.drain()
            service.snapshot()
        except (PoolUnrecoverableError, DegradedModeError):
            break
    try:
        service.similarity(0, 1)  # final sync point
    except (PoolUnrecoverableError, DegradedModeError):
        pass


class TestSeededSchedules:
    @pytest.mark.parametrize("seed", range(10))
    def test_recovered_or_cleanly_degraded(self, workload, seed):
        graph, scores, updates, oracle = workload
        plan = FaultPlan.seeded(seed, workers=2, horizon=14)
        service = _pool_service(
            graph, scores, plan, degraded_policy="reject"
        )
        try:
            _drive(service, updates)
            if service.degraded:
                # Clean degradation: typed refusal, consistent reads.
                with pytest.raises(DegradedModeError):
                    service.submit(EdgeUpdate.insert(0, 1))
                view = service.snapshot()
                matrix = view.similarities()
                np.testing.assert_allclose(matrix, matrix.T, atol=1e-12)
                assert len(service.top_k(5)) == 5
                report = service.metrics_report()["degraded"]
                assert report["degraded"] is True
                assert report["reason"]
            else:
                # Every fault was absorbed: exactly-once, bit-identical.
                assert np.array_equal(
                    service.engine.similarities(), oracle
                ), plan.describe()
        finally:
            service.close()

    @pytest.mark.parametrize("seed", (0, 2, 4))
    def test_rebuild_policy_always_reaches_oracle(self, workload, seed):
        """With the rebuild policy even a poisoned pool ends bit-identical:
        the service fails over to an in-process store rebuilt from the
        frozen segments + journal and keeps draining."""
        graph, scores, updates, oracle = workload
        plan = FaultPlan.seeded(seed, workers=2, horizon=14)
        service = _pool_service(
            graph, scores, plan, degraded_policy="rebuild"
        )
        try:
            _drive(service, updates)
            assert not service.degraded
            assert np.array_equal(
                service.engine.similarities(), oracle
            ), plan.describe()
            if service.failovers:
                assert service.executor == "inproc"
        finally:
            service.close()

    @pytest.mark.parametrize("seed", (1, 3, 6, 9))
    def test_recoverable_kinds_are_transparent(self, workload, seed):
        """Schedules without poison must never degrade the service."""
        graph, scores, updates, oracle = workload
        plan = FaultPlan.seeded(
            seed,
            workers=2,
            horizon=14,
            kinds=("crash", "stall", "shm_fail", "corrupt"),
        )
        service = _pool_service(
            graph, scores, plan, degraded_policy="reject"
        )
        try:
            _drive(service, updates)
            assert not service.degraded, plan.describe()
            assert service.failovers == 0
            assert np.array_equal(
                service.engine.similarities(), oracle
            ), plan.describe()
        finally:
            service.close()


class TestSingleFaultKinds:
    def test_corruption_caught_and_resent(self, workload):
        """A flipped word in the staged payload is caught by the section
        checksums and repaired from the journal copy — never applied."""
        graph, scores, updates, oracle = workload
        plan = FaultPlan(
            actions=(
                FaultAction(kind="corrupt", worker_id=0, at_command=2),
            )
        )
        service = _pool_service(
            graph, scores, plan, degraded_policy="reject"
        )
        try:
            pool = service.engine.score_store.pool
            _drive(service, updates)
            assert pool.stats.corruptions >= 1
            assert pool.stats.crashes == 0
            assert np.array_equal(service.engine.similarities(), oracle)
            faults = service.metrics_report()["executor"]["faults"]
            assert any(f["kind"] == "corrupt" for f in faults["fired"])
        finally:
            service.close()

    def test_corruption_under_pipelined_dispatch_stays_ordered(
        self, workload
    ):
        """Checksum failure while later batches are already queued in
        the worker's pipe must not repair via in-band resend — that
        would apply the batch after its successors and the reordered
        accumulation diverges by ULPs.  The pool escalates to a
        journal replay (kill + respawn), which is strictly ordered."""
        graph, scores, updates, oracle = workload
        plan = FaultPlan(
            actions=(
                FaultAction(kind="corrupt", worker_id=0, at_command=2),
            )
        )
        service = _pool_service(
            graph, scores, plan, degraded_policy="reject"
        )
        try:
            pool = service.engine.score_store.pool
            # No reads between drains: the pipeline stays full, so the
            # corrupt batch's repair races batches already dispatched.
            for begin in range(0, len(updates), CHUNK):
                service.submit_many(updates[begin : begin + CHUNK])
                service.drain()
            final = service.engine.similarities()  # settles the pipeline
            assert pool.stats.corruptions >= 1
            assert pool.stats.respawns >= 1  # escalated, not resent
            assert np.array_equal(final, oracle)
        finally:
            service.close()

    def test_shm_allocation_failure_falls_back(self, workload):
        """Staging-slot exhaustion fires before the journal append, so
        the drain retries on the per-plan wire path, bit-identically."""
        graph, scores, updates, oracle = workload
        plan = FaultPlan(
            actions=(
                FaultAction(kind="shm_fail", worker_id=0, at_command=2),
            )
        )
        service = _pool_service(
            graph, scores, plan, degraded_policy="reject"
        )
        try:
            _drive(service, updates)
            assert not service.degraded
            assert np.array_equal(service.engine.similarities(), oracle)
        finally:
            service.close()

    def test_short_stall_rides_out_under_deadline(self, workload):
        """A stall shorter than the deadline floor is absorbed without
        declaring a crash — no respawn, no replay."""
        graph, scores, updates, oracle = workload
        plan = FaultPlan(
            actions=(
                FaultAction(
                    kind="stall", worker_id=1, at_command=3, delay=0.2
                ),
            )
        )
        service = _pool_service(
            graph, scores, plan, degraded_policy="reject"
        )
        try:
            pool = service.engine.score_store.pool
            _drive(service, updates)
            assert pool.stats.crashes == 0
            assert np.array_equal(service.engine.similarities(), oracle)
        finally:
            service.close()

    def test_long_hang_trips_adaptive_deadline(self, workload):
        """Once the per-worker p99 estimate is warm, a genuine hang is
        declared dead at the (small) adaptive deadline instead of the
        2-minute fixed timeout, and replay still converges bit-exactly."""
        graph, scores, updates, oracle = workload
        # Warm-up drains push >= min_samples replies per worker before
        # the stall fires, so the adaptive path (not the cold fallback)
        # is what detects the hang.
        plan = FaultPlan(
            actions=(
                FaultAction(
                    kind="stall", worker_id=0, at_command=11, delay=30.0
                ),
            )
        )
        service = _pool_service(
            graph,
            scores,
            plan,
            degraded_policy="reject",
            options={"deadline_floor": 0.3, "command_timeout": 60.0},
        )
        try:
            pool = service.engine.score_store.pool
            for update in updates[:9]:  # commands 2..10: warm the p99
                service.submit(update)
                service.drain()
            for update in updates[9:]:  # command 11 dispatches the stall
                service.submit(update)
                service.drain()
            final = service.engine.similarities()  # settles the pipeline
            assert pool.stats.crashes >= 1
            assert pool.stats.respawns >= 1
            # The same stream drained per-update must match the chunked
            # oracle only after identical boundaries; recompute it.
            expected = _oracle(graph, scores, updates, chunk=1)
            assert np.array_equal(final, expected)
        finally:
            service.close()


class TestFlightRecorder:
    def test_quarantine_writes_flight_files(self, workload, tmp_path):
        """A poison batch leaves a post-mortem trail on disk: the pool
        dumps its event ring on the quarantine and the service dumps
        again on degraded-mode entry, each a well-formed JSON snapshot
        in the configured flight directory."""
        import json as _json

        from repro.serving import ServiceConfig, TelemetryConfig

        graph, scores, updates, _ = workload
        config = ServiceConfig(
            damping=CFG.damping,
            iterations=CFG.iterations,
            shard_rows=16,
            executor="process",
            workers=2,
            degraded_policy="reject",
            executor_options={
                "fault_plan": FaultPlan(
                    actions=(
                        FaultAction(
                            kind="poison", worker_id=0, at_command=3
                        ),
                    )
                )
            },
            telemetry=TelemetryConfig(flight_dir=str(tmp_path)),
        )
        service = SimRankService(
            graph.copy(), config, initial_scores=scores.copy()
        )
        try:
            _drive(service, updates)
            assert service.degraded
            report = service.metrics_report()
            assert (
                report["executor"]["supervisor"]["quarantined_batches"] == 1
            )
            dumps = sorted(p.name for p in tmp_path.glob("flight-*.json"))
            reasons = {name.split("-")[-2] for name in dumps}
            assert "quarantine" in reasons, dumps
            assert "degraded" in reasons, dumps
            for path in tmp_path.glob("flight-*.json"):
                payload = _json.loads(path.read_text())
                assert set(payload) == {
                    "reason",
                    "pid",
                    "dumped_at",
                    "events",
                    "context",
                }
                assert isinstance(payload["context"], dict)
                assert isinstance(payload["events"], list)
                for event in payload["events"]:
                    assert set(event) == {"time", "kind", "fields"}
            # The flight gauges agree with what's on disk.
            assert report["telemetry"]["flight"]["dumps"] >= 2
        finally:
            service.close()
