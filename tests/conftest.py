"""Shared fixtures for the test suite."""

from __future__ import annotations

import gc
import os

import numpy as np
import pytest

from repro import SimRankConfig
from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import (
    erdos_renyi_digraph,
    linkage_model_digraph,
    preferential_attachment_digraph,
)


def _repro_shm_segments() -> set:
    """Names of live repro-owned POSIX shm segments (and manifests)."""
    found = set()
    try:
        found.update(
            name for name in os.listdir("/dev/shm") if name.startswith("repro")
        )
    except OSError:
        pass
    from repro.cluster.shm import MANIFEST_DIR

    try:
        found.update(
            f"manifest:{name}" for name in os.listdir(MANIFEST_DIR)
        )
    except OSError:
        pass
    return found


@pytest.fixture
def shm_guard():
    """Zero-leak guard: the test must not leave shm segments behind.

    Every pool allocation is named ``repro...`` and registered in a
    per-pool manifest, so a before/after diff of ``/dev/shm`` plus the
    manifest directory catches any segment that outlived its pool —
    including across worker kills, quarantines, and degraded-mode
    shutdowns.
    """
    before = _repro_shm_segments()
    yield
    gc.collect()
    leaked = _repro_shm_segments() - before
    assert not leaked, f"leaked shm segments: {sorted(leaked)}"


@pytest.fixture
def config() -> SimRankConfig:
    """The paper's evaluation configuration (C=0.6, K=15)."""
    return SimRankConfig(damping=0.6, iterations=15)


@pytest.fixture
def tight_config() -> SimRankConfig:
    """Higher-iteration config where truncation error is ~1e-6."""
    return SimRankConfig(damping=0.6, iterations=30)


@pytest.fixture
def diamond_graph() -> DynamicDiGraph:
    """The classic 4-node diamond: 0->1, 0->2, 1->3, 2->3."""
    return DynamicDiGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])


@pytest.fixture
def cyclic_graph() -> DynamicDiGraph:
    """A small graph with a directed cycle (exercises non-nilpotent Q)."""
    return DynamicDiGraph.from_edges(
        5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (0, 4)]
    )


@pytest.fixture
def citation_graph() -> DynamicDiGraph:
    """A 60-node scale-free citation-style DAG."""
    return preferential_attachment_digraph(60, out_degree=3, seed=11)


@pytest.fixture
def random_graph() -> DynamicDiGraph:
    """A 40-node Erdős–Rényi digraph with cycles."""
    return erdos_renyi_digraph(40, 0.08, seed=5)


@pytest.fixture
def linkage_graph() -> DynamicDiGraph:
    """A 50-node linkage-model graph (the synthetic bench generator)."""
    return linkage_model_digraph(50, out_degree=3, locality=0.5, seed=13)


def assert_symmetric(matrix: np.ndarray, atol: float = 1e-10) -> None:
    """Assert a matrix equals its transpose within tolerance."""
    np.testing.assert_allclose(matrix, matrix.T, atol=atol)
