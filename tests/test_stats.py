"""Tests for repro.graph.stats and repro.metrics.topk_tracker."""

import numpy as np
import pytest

from repro import DynamicSimRank, SimRankConfig
from repro.exceptions import DimensionError
from repro.graph.digraph import DynamicDiGraph
from repro.graph.stats import (
    gini_coefficient,
    graph_stats,
    in_degree_histogram,
    snapshot_growth,
)
from repro.graph.updates import EdgeUpdate
from repro.metrics.topk_tracker import TopKTracker


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient(np.full(10, 3.0)) == pytest.approx(0.0, abs=1e-12)

    def test_concentrated_is_high(self):
        values = np.zeros(100)
        values[0] = 1.0
        assert gini_coefficient(values) > 0.9

    def test_empty_and_zero(self):
        assert gini_coefficient(np.asarray([])) == 0.0
        assert gini_coefficient(np.zeros(5)) == 0.0

    def test_scale_invariant(self):
        rng = np.random.default_rng(0)
        values = rng.random(50)
        assert gini_coefficient(values) == pytest.approx(
            gini_coefficient(10.0 * values)
        )


class TestGraphStats:
    def test_diamond(self, diamond_graph):
        stats = graph_stats(diamond_graph)
        assert stats.num_nodes == 4
        assert stats.num_edges == 4
        assert stats.average_in_degree == pytest.approx(1.0)
        assert stats.max_in_degree == 2
        assert stats.max_out_degree == 2
        assert stats.num_sources == 1  # node 0
        assert stats.num_sinks == 1  # node 3

    def test_as_dict_roundtrip(self, diamond_graph):
        payload = graph_stats(diamond_graph).as_dict()
        assert payload["num_nodes"] == 4
        assert set(payload) == {
            "num_nodes",
            "num_edges",
            "average_in_degree",
            "max_in_degree",
            "max_out_degree",
            "num_sources",
            "num_sinks",
            "in_degree_gini",
        }

    def test_citation_graph_is_skewed(self, citation_graph):
        stats = graph_stats(citation_graph)
        assert stats.in_degree_gini > 0.3  # preferential attachment skew

    def test_in_degree_histogram(self, diamond_graph):
        histogram = in_degree_histogram(diamond_graph)
        assert histogram == {0: 1, 1: 2, 2: 1}
        assert sum(histogram.values()) == diamond_graph.num_nodes


class TestSnapshotGrowth:
    def test_basic(self):
        assert snapshot_growth([100, 110, 121]) == pytest.approx([0.1, 0.1])

    def test_from_zero(self):
        growth = snapshot_growth([0, 5])
        assert growth[0] == float("inf")
        assert snapshot_growth([0, 0]) == [0.0]

    def test_paper_weekly_churn_shape(self):
        """The paper cites 5-10% weekly updates; our datasets land near it."""
        from repro.datasets.citation import dblp_like

        corpus = dblp_like(num_papers=300, num_years=8)
        sizes = [
            corpus.snapshot_at(t).num_edges for t in corpus.timestamps()
        ]
        late_growth = snapshot_growth(sizes)[-3:]
        assert all(0.0 < g < 1.0 for g in late_growth)


class TestTopKTracker:
    def test_initial_ranking(self, cyclic_graph, config):
        engine = DynamicSimRank(cyclic_graph, config)
        tracker = TopKTracker(engine, k=3)
        assert len(tracker.current()) == 3
        assert tracker.k == 3

    def test_refresh_detects_churn(self):
        graph = DynamicDiGraph.from_edges(6, [(0, 1), (0, 2), (3, 4)])
        config = SimRankConfig(damping=0.8, iterations=15)
        engine = DynamicSimRank(graph, config)
        tracker = TopKTracker(engine, k=1)
        assert tracker.current()[0][:2] == (1, 2)  # only similar pair
        # Give (4, 5) two strong common in-neighbors via node 3 and 0.
        engine.apply(EdgeUpdate.insert(3, 5))
        churn = tracker.refresh()
        # (4,5) now shares in-neighbor 3: could enter depending on scores.
        assert isinstance(churn.changed, bool)
        assert tracker.current_pairs() <= {
            (a, b) for a in range(6) for b in range(6) if a < b
        }

    def test_no_churn_for_disjoint_update(self):
        graph = DynamicDiGraph.from_edges(
            8, [(0, 1), (0, 2), (4, 5), (6, 7)]
        )
        config = SimRankConfig(damping=0.8, iterations=15)
        engine = DynamicSimRank(graph, config)
        tracker = TopKTracker(engine, k=1)
        engine.apply(EdgeUpdate.insert(6, 5))  # far from the (1,2) pair
        churn = tracker.refresh()
        assert not churn.changed
        assert tracker.current()[0][:2] == (1, 2)

    def test_k_validation(self, cyclic_graph, config):
        engine = DynamicSimRank(cyclic_graph, config)
        with pytest.raises(DimensionError):
            TopKTracker(engine, k=0)
