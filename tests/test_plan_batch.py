"""Batched plan pipelining: wire encoding, batch apply, equivalence.

The contract under test is the one the cluster's batched drain path
rides on: a ``PlanBatch`` survives the packed word encoding bit-exactly,
applying a batch equals applying its plans sequentially, and a service
drain over the batched wire path is bit-identical to both the per-plan
wire path and the in-process oracle over arbitrary mixed update streams.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SimRankConfig
from repro.executor.score_store import ScoreStore
from repro.graph.generators import erdos_renyi_digraph
from repro.graph.updates import UpdateBatch
from repro.incremental.plan import (
    PackedPlanBatch,
    PlanBatch,
    apply_plan_dense,
)
from repro.incremental.row_update import (
    consolidate_batch,
    plan_composite_row_update,
)
from repro.linalg.qstore import TransitionStore
from repro.metrics.topk import top_k_pairs
from repro.serving import SimRankService
from repro.simrank.matrix import matrix_simrank

from _streams import random_update_stream

CFG = SimRankConfig(damping=0.6, iterations=8)


def _plans_for_stream(num_nodes, num_updates, seed):
    """Real kernel plans: one composite row plan per consolidated group."""
    graph = erdos_renyi_digraph(num_nodes, 0.06, seed=seed)
    store = TransitionStore.from_graph(graph)
    scores = matrix_simrank(graph, CFG)
    stream = random_update_stream(graph, num_updates, seed=seed + 1)
    row_updates = consolidate_batch(UpdateBatch(stream), graph)
    plans = [
        plan_composite_row_update(graph, store, scores, ru, CFG)
        for ru in row_updates
    ]
    return graph, scores, plans


class TestPackedEncoding:
    @pytest.mark.parametrize("seed", [1, 2, 5])
    def test_word_roundtrip_bit_exact(self, seed):
        """packed -> words -> plans reproduces every factor bitwise."""
        _, _, plans = _plans_for_stream(60, 25, seed)
        batch = PlanBatch(plans)
        packed = batch.packed()
        words = np.empty(packed.word_count(), dtype=np.int64)
        assert packed.write_words(words) == packed.word_count()
        rebuilt = PackedPlanBatch.from_words(
            words, packed.count, packed.section_lengths()
        ).plans()
        assert len(rebuilt) == len(plans)
        for original, copy in zip(plans, rebuilt):
            assert copy.target == original.target
            assert copy.rank == original.rank
            assert np.array_equal(copy.rows_union, original.rows_union)
            assert np.array_equal(copy.cols_union, original.cols_union)
            for (ai, av), (bi, bv) in zip(
                original.left_factors, copy.left_factors
            ):
                assert np.array_equal(ai, bi)
                assert np.array_equal(av, bv)
            for (ai, av), (bi, bv) in zip(
                original.right_factors, copy.right_factors
            ):
                assert np.array_equal(ai, bi)
                assert np.array_equal(av, bv)

    def test_roundtripped_apply_bit_identical(self):
        """Applying rebuilt plans == applying the originals, bitwise."""
        _, scores, plans = _plans_for_stream(50, 20, seed=3)
        packed = PlanBatch(plans).packed()
        words = np.empty(packed.word_count(), dtype=np.int64)
        packed.write_words(words)
        rebuilt = PackedPlanBatch.from_words(
            words, packed.count, packed.section_lengths()
        ).plans()
        direct = scores.copy()
        wired = scores.copy()
        for plan in plans:
            apply_plan_dense(direct, plan)
        for plan in rebuilt:
            apply_plan_dense(wired, plan)
        assert np.array_equal(direct, wired)

    def test_truncated_words_rejected(self):
        _, _, plans = _plans_for_stream(40, 10, seed=4)
        packed = PlanBatch(plans).packed()
        words = np.empty(packed.word_count(), dtype=np.int64)
        packed.write_words(words)
        with pytest.raises(ValueError):
            PackedPlanBatch.from_words(
                words[:-1], packed.count, packed.section_lengths()
            )

    def test_empty_batch(self):
        batch = PlanBatch([])
        assert batch.is_noop
        packed = batch.packed()
        assert packed.count == 0
        assert packed.word_count() == 0
        assert PackedPlanBatch.from_words(
            np.empty(0, dtype=np.int64), 0, packed.section_lengths()
        ).plans() == []


class TestScoreStoreBatchApply:
    def test_batch_equals_sequential(self):
        """ScoreStore.apply_batch == per-plan apply_plan, bitwise."""
        _, scores, plans = _plans_for_stream(50, 25, seed=6)
        sequential = ScoreStore(scores, shard_rows=16)
        batched = ScoreStore(scores, shard_rows=16)
        for plan in plans:
            sequential.apply_plan(plan)
        batched.apply_batch(PlanBatch(plans))
        assert np.array_equal(sequential.to_array(), batched.to_array())
        assert batched.version == sequential.version
        report = batched.apply_metrics.report()
        assert report["batches"] == 1
        assert report["batch_size"] == len(
            [plan for plan in plans if not plan.is_noop]
        )

    def test_noop_batch_is_ignored(self):
        store = ScoreStore(np.zeros((8, 8)), shard_rows=4)
        store.apply_batch(PlanBatch([]))
        assert store.version == 0
        assert store.apply_metrics.batches == 0


class TestServiceStreamEquivalence:
    """Batched wire path == per-plan wire path == in-process oracle."""

    @pytest.mark.parametrize("seed", [21, 22])
    def test_mixed_streams_bit_identical(self, seed):
        graph = erdos_renyi_digraph(80, 0.05, seed=seed)
        scores = matrix_simrank(graph, CFG)
        updates = random_update_stream(graph, 60, seed=seed + 100)
        services = {
            "inproc": SimRankService(
                graph, CFG, initial_scores=scores, shard_rows=16
            ),
            "batched": SimRankService(
                graph,
                CFG,
                initial_scores=scores,
                shard_rows=16,
                executor="process",
                workers=2,
            ),
            "per-plan": SimRankService(
                graph,
                CFG,
                initial_scores=scores,
                shard_rows=16,
                executor="process",
                workers=2,
                plan_batching=False,
            ),
        }
        try:
            chunk = 12
            for begin in range(0, len(updates), chunk):
                part = updates[begin : begin + chunk]
                for service in services.values():
                    service.submit_many(part)
                    service.drain()
            oracle = services["inproc"].engine.similarities()
            oracle_top = top_k_pairs(oracle, 10)
            for name in ("batched", "per-plan"):
                assert np.array_equal(
                    services[name].engine.similarities(), oracle
                ), name
                assert services[name].top_k(10) == oracle_top, name
            # Only the batched service shipped batched commands.
            batched_report = services["batched"].metrics_report()["executor"]
            assert batched_report["plan_batches"] > 0
            assert batched_report["batch_size"] > 1.0
            perplan_report = services["per-plan"].metrics_report()["executor"]
            assert perplan_report["plan_batches"] == 0
        finally:
            for service in services.values():
                service.close()
