"""Mixed-precision score store + the PROSE-style accuracy autotuner.

Covers the dtype seam end to end: per-shard storage dtypes in the
in-process :class:`ScoreStore`, uniform pool dtypes in the process
executor (bit-identical to the in-process executor at the *same*
dtype), dtype-aware memory accounting, the ranking-accuracy metrics
(NDCG@k / top-k overlap) the precision gates are built on, and the
:class:`PrecisionAutotuner` → :class:`PrecisionPlan` →
``SimRankService(precision=...)`` loop including restart and
journal-replay round trips.

The float64 default must stay bit-identical to the pre-dtype stack:
that invariant is asserted directly here and indirectly by every
pre-existing bit-equivalence suite running unchanged.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SimRankConfig
from repro.dtypes import DEFAULT_FLOAT_DTYPE, dtype_name, resolve_dtype
from repro.exceptions import ClusterError, ConfigError
from repro.executor.score_store import ScoreStore
from repro.graph.generators import preferential_attachment_digraph
from repro.graph.updates import UpdateBatch
from repro.incremental.engine import DynamicSimRank
from repro.incremental.plan import plan_unit_update
from repro.incremental.workspace import UpdateWorkspace
from repro.linalg.qstore import TransitionStore
from repro.metrics.memory import score_store_bytes, snapshot_overhead_bytes
from repro.metrics import ndcg_at_k, top_k_overlap
from repro.serving import SimRankService
from repro.simrank.matrix import matrix_simrank
from repro.tuning import (
    PrecisionAutotuner,
    PrecisionGates,
    PrecisionPlan,
    calibration_updates,
)

from _streams import random_update_stream

CFG = SimRankConfig(damping=0.6, iterations=8)


@pytest.fixture(scope="module")
def workload():
    graph = preferential_attachment_digraph(48, out_degree=3, seed=9)
    scores = matrix_simrank(graph, CFG)
    updates = random_update_stream(graph, 12, seed=21)
    return graph, scores, updates


def _replay(graph, scores, updates, **engine_kwargs):
    engine = DynamicSimRank(
        graph, CFG, initial_scores=scores.copy(), **engine_kwargs
    )
    try:
        engine.apply(UpdateBatch(list(updates)))
        return engine.similarities()
    finally:
        engine.close()


# ------------------------------------------------------------------ #
# dtype plumbing: resolve, store, snapshots, save/load
# ------------------------------------------------------------------ #


class TestDtypePlumbing:
    def test_resolve_dtype_names_and_default(self):
        assert resolve_dtype(None) == np.dtype(DEFAULT_FLOAT_DTYPE)
        assert resolve_dtype("float32") == np.dtype(np.float32)
        assert resolve_dtype(np.float64) == np.dtype(np.float64)
        assert dtype_name(np.float32) == "float32"
        with pytest.raises(ConfigError):
            resolve_dtype("float16")

    def test_score_store_dtype_and_accounting(self, workload):
        _, scores, _ = workload
        f64 = ScoreStore(scores.copy(), shard_rows=16)
        f32 = ScoreStore(scores.copy(), shard_rows=16, dtype="float32")
        assert f64.dtype == np.float64
        assert f32.dtype == np.float32
        # float32 storage halves the score-store footprint exactly.
        assert f32.nbytes() * 2 == f64.nbytes()
        report = f32.dtype_report()
        assert report["score_dtype"] == "float32"
        assert report["score_dtype_bytes"] == scores.size * 4
        assert report["shards_by_dtype"] == {"float32": f32.num_shards}

    def test_per_shard_demotion_and_mixed_report(self, workload):
        _, scores, _ = workload
        store = ScoreStore(scores.copy(), shard_rows=16)
        baseline = store.nbytes()
        assert store.set_shard_dtype(0, "float32")
        # Idempotent: demoting again reports no change.
        assert not store.set_shard_dtype(0, "float32")
        assert store.shard_dtypes()[0] == "float32"
        assert store.nbytes() < baseline
        report = store.dtype_report()
        assert report["shards_by_dtype"]["float32"] == 1
        # Mixed stores promote to the widest dtype for reads.
        assert store.dtype == np.float64
        assert store.to_array().dtype == np.float64

    def test_snapshot_preserves_shard_dtypes(self, workload):
        _, scores, _ = workload
        store = ScoreStore(scores.copy(), shard_rows=16, dtype="float32")
        snap = store.snapshot()
        assert snap.to_array().dtype == np.float32
        assert np.array_equal(snap.to_array(), store.to_array())

    def test_engine_save_load_round_trips_dtype(self, workload, tmp_path):
        graph, scores, updates = workload
        engine = DynamicSimRank(
            graph, CFG, initial_scores=scores.copy(), score_dtype="float32"
        )
        engine.apply(UpdateBatch(list(updates[:4])))
        path = tmp_path / "state.npz"
        engine.save(path)
        loaded = DynamicSimRank.load(path)
        assert loaded.score_dtype == np.dtype(np.float32)
        assert np.array_equal(loaded.similarities(), engine.similarities())

    def test_memory_model_tracks_dtype(self):
        assert score_store_bytes(100) == 100 * 100 * 8
        assert score_store_bytes(100, dtype="float32") == 100 * 100 * 4
        f64 = snapshot_overhead_bytes(2, 16, 64)
        f32 = snapshot_overhead_bytes(2, 16, 64, dtype="float32")
        assert f32 * 2 == f64

    def test_panels_and_workspace_dtype_seams(self, workload):
        graph, scores, updates = workload
        store = TransitionStore.from_graph(graph)
        plan = plan_unit_update(store, scores, updates[0], graph, CFG)
        left64, right64 = plan.panels()
        left32, right32 = plan.panels(dtype="float32")
        assert left64.dtype == np.float64
        assert left32.dtype == np.float32
        np.testing.assert_allclose(left32, left64, rtol=1e-6)
        np.testing.assert_allclose(right32, right64, rtol=1e-6)
        ws = UpdateWorkspace(8, dtype="float32")
        assert ws.dtype == np.float32
        assert ws.zeros("u", 8).dtype == np.float32
        assert UpdateWorkspace(8).dtype == np.float64


# ------------------------------------------------------------------ #
# float64 default stays bit-identical; float32 equivalence
# ------------------------------------------------------------------ #


class TestBitIdentity:
    def test_float64_default_is_bit_identical_to_explicit(self, workload):
        graph, scores, updates = workload
        default = _replay(graph, scores, updates)
        explicit = _replay(graph, scores, updates, score_dtype="float64")
        assert default.dtype == np.float64
        assert np.array_equal(default, explicit)

    def test_float32_storage_tracks_float64_closely(self, workload):
        graph, scores, updates = workload
        f64 = _replay(graph, scores, updates)
        f32 = _replay(graph, scores, updates, score_dtype="float32")
        assert f32.dtype == np.float32
        np.testing.assert_allclose(f32, f64, atol=1e-5)

    def test_process_float32_bit_identical_to_inproc_float32(self, workload):
        graph, scores, updates = workload
        inproc = _replay(graph, scores, updates, score_dtype="float32")
        cluster = _replay(
            graph,
            scores,
            updates,
            score_dtype="float32",
            executor="process",
            workers=2,
            shard_rows=16,
        )
        assert cluster.dtype == np.float32
        assert np.array_equal(cluster, inproc)

    def test_journal_replay_preserves_pool_dtype(self, workload):
        graph, scores, updates = workload
        engine = DynamicSimRank(
            graph,
            CFG,
            initial_scores=scores.copy(),
            score_dtype="float32",
            executor="process",
            workers=1,
            shard_rows=16,
        )
        try:
            engine.apply(UpdateBatch(list(updates[:6])))
            expected = engine.similarities()
            from repro.cluster.recovery import rebuild_score_store

            rebuilt = rebuild_score_store(engine.score_store.pool)
            assert rebuilt.dtype == np.float32
            assert np.array_equal(rebuilt.to_array(), expected)
        finally:
            engine.close()

    def test_pool_rejects_per_shard_demotion(self, workload):
        graph, scores, _ = workload
        engine = DynamicSimRank(
            graph,
            CFG,
            initial_scores=scores.copy(),
            executor="process",
            workers=1,
            shard_rows=16,
        )
        try:
            with pytest.raises(ClusterError):
                engine.score_store.set_shard_dtype(0, "float32")
            with pytest.raises(ClusterError):
                engine.score_store.set_dtype("float32")
        finally:
            engine.close()


# ------------------------------------------------------------------ #
# Accuracy metrics: determinism + stability under float32 epsilon
# ------------------------------------------------------------------ #


class TestAccuracyMetrics:
    def _scores(self, seed=3, n=40):
        rng = np.random.default_rng(seed)
        scores = rng.random((n, n))
        scores = (scores + scores.T) / 2
        np.fill_diagonal(scores, 1.0)
        return scores

    def test_identical_inputs_are_perfect(self):
        scores = self._scores()
        assert ndcg_at_k(scores, scores, 50) == pytest.approx(1.0)
        assert top_k_overlap(scores, scores, 50) == 1.0

    def test_metrics_are_deterministic(self):
        base = self._scores(seed=5)
        approx = base + 1e-3 * self._scores(seed=6)
        first = (ndcg_at_k(approx, base, 25), top_k_overlap(approx, base, 25))
        second = (
            ndcg_at_k(approx.copy(), base.copy(), 25),
            top_k_overlap(approx.copy(), base.copy(), 25),
        )
        assert first == second

    def test_stable_under_float32_epsilon(self):
        """Round-tripping through float32 must not crater the gates.

        This is the exact perturbation the autotuner's float32 leg
        introduces: storage rounding at ~1e-7 relative error.
        """
        base = self._scores(seed=8)
        approx = base.astype(np.float32).astype(np.float64)
        assert ndcg_at_k(approx, base, 50) >= 0.999
        assert top_k_overlap(approx, base, 50) >= 0.98

    def test_tie_handling_does_not_punish_reordering(self):
        """Exactly tied baseline scores are interchangeable under NDCG."""
        base = np.zeros((6, 6))
        base[0, 1] = base[1, 0] = 0.5
        base[2, 3] = base[3, 2] = 0.5
        base[4, 5] = base[5, 4] = 0.1
        approx = base.copy()
        # Swap the two tied pairs' order with an epsilon nudge.
        approx[0, 1] = approx[1, 0] = 0.5 - 1e-12
        assert ndcg_at_k(approx, base, 3) == pytest.approx(1.0, abs=1e-9)

    def test_overlap_counts_pair_identity_not_order(self):
        base = self._scores(seed=12)
        perm = base + 1e-9 * self._scores(seed=13)
        # Tiny jitter reorders within the list but keeps the same set.
        assert top_k_overlap(perm, base, 10) >= 0.9


# ------------------------------------------------------------------ #
# Autotuner + precision plans
# ------------------------------------------------------------------ #


class TestPrecisionPlan:
    def test_plan_json_round_trip(self, tmp_path):
        plan = PrecisionPlan(
            store_dtype="float64",
            shard_dtypes={0: "float32", 2: "float32"},
            gates=PrecisionGates(min_ndcg=0.995),
            seed=11,
            calibration_updates=8,
            num_nodes=48,
            shard_rows=16,
            metrics={"attempts": 3},
        )
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = PrecisionPlan.load(path)
        assert loaded == plan
        assert loaded.demoted_shards() == [0, 2]
        assert not loaded.uniform

    def test_plan_rejects_unknown_dtype(self):
        with pytest.raises(ConfigError):
            PrecisionPlan(store_dtype="float16")
        with pytest.raises(ConfigError):
            PrecisionPlan(shard_dtypes={0: "int8"})

    def test_apply_to_demotes_store_shards(self, workload):
        _, scores, _ = workload
        store = ScoreStore(scores.copy(), shard_rows=16)
        plan = PrecisionPlan(shard_dtypes={1: "float32"})
        assert plan.apply_to(store) == 1
        assert store.shard_dtypes()[1] == "float32"

    def test_calibration_updates_are_seeded(self, workload):
        graph, _, _ = workload
        first = calibration_updates(graph, 8, seed=4)
        second = calibration_updates(graph, 8, seed=4)
        assert [
            (u.kind, u.source, u.target) for u in first
        ] == [(u.kind, u.source, u.target) for u in second]
        other = calibration_updates(graph, 8, seed=5)
        assert [(u.source, u.target) for u in first] != [
            (u.source, u.target) for u in other
        ]


class TestPrecisionAutotuner:
    def test_loose_gates_accept_whole_store_float32(self, workload):
        graph, scores, _ = workload
        tuner = PrecisionAutotuner(
            graph,
            CFG,
            initial_scores=scores.copy(),
            shard_rows=16,
            gates=PrecisionGates(min_ndcg=0.0, min_topk_overlap=0.0),
            seed=7,
            num_updates=6,
        )
        plan = tuner.run()
        assert plan.store_dtype == "float32"
        assert plan.uniform
        assert plan.metrics["accepted"] is not None
        assert len(plan.metrics["attempts"]) >= 1

    def test_impossible_gates_revert_to_float64(self, workload):
        graph, scores, _ = workload
        tuner = PrecisionAutotuner(
            graph,
            CFG,
            initial_scores=scores.copy(),
            shard_rows=16,
            gates=PrecisionGates(min_ndcg=1.1, min_topk_overlap=1.1),
            seed=7,
            num_updates=6,
        )
        plan = tuner.run()
        assert plan.store_dtype == "float64"
        assert not plan.demoted_shards()
        assert plan.metrics["accepted"] is None

    def test_autotuner_is_deterministic(self, workload):
        graph, scores, _ = workload

        def run():
            return PrecisionAutotuner(
                graph,
                CFG,
                initial_scores=scores.copy(),
                shard_rows=16,
                seed=13,
                num_updates=6,
            ).run()

        assert run().to_dict() == run().to_dict()


class TestServicePrecision:
    def test_rejects_unknown_mode(self, workload):
        graph, scores, _ = workload
        with pytest.raises(ConfigError):
            SimRankService(
                graph, CFG, initial_scores=scores.copy(), precision="float16"
            )

    def test_float32_service_serves_and_reports(self, workload):
        graph, scores, updates = workload
        service = SimRankService(
            graph,
            CFG,
            initial_scores=scores.copy(),
            shard_rows=16,
            precision="float32",
        )
        try:
            service.submit_many(list(updates[:4]))
            service.drain()
            report = service.metrics_report()
            assert report["executor"]["score_dtype"] == "float32"
            assert (
                report["executor"]["score_dtype_bytes"]
                == graph.num_nodes * graph.num_nodes * 4
            )
            assert report["precision"]["mode"] == "float32"
            assert service.top_k(5)
        finally:
            service.close()

    def test_auto_plan_restart_round_trip(self, workload, tmp_path):
        graph, scores, _ = workload
        service = SimRankService(
            graph,
            CFG,
            initial_scores=scores.copy(),
            shard_rows=16,
            precision="auto",
            precision_plan={
                "gates": PrecisionGates(
                    min_ndcg=0.0, min_topk_overlap=0.0
                ).to_dict(),
                "store_dtype": "float32",
                "shard_dtypes": {},
                "num_nodes": graph.num_nodes,
                "shard_rows": 16,
            },
        )
        try:
            plan = service.precision_plan
            assert plan is not None
            path = tmp_path / "plan.json"
            plan.save(path)
            dtype_before = service.engine.score_store.dtype
        finally:
            service.close()
        # Restart from the serialized plan: same dtype decision, no
        # re-tuning run.
        restarted = SimRankService(
            graph,
            CFG,
            initial_scores=scores.copy(),
            shard_rows=16,
            precision="auto",
            precision_plan=str(path),
        )
        try:
            assert restarted.engine.score_store.dtype == dtype_before
            assert restarted.precision_plan.to_dict() == plan.to_dict()
        finally:
            restarted.close()

    def test_auto_runs_tuner_when_no_plan_given(self, workload):
        graph, scores, _ = workload
        service = SimRankService(
            graph,
            CFG,
            initial_scores=scores.copy(),
            shard_rows=16,
            precision="auto",
        )
        try:
            plan = service.precision_plan
            assert plan is not None
            assert plan.store_dtype in ("float32", "float64")
            assert (
                service.engine.score_store.dtype.name == plan.store_dtype
                or not plan.uniform
            )
        finally:
            service.close()
