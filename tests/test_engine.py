"""Tests for repro.incremental.engine (DynamicSimRank)."""

import numpy as np
import pytest

from repro import DynamicSimRank, SimRankConfig
from repro.exceptions import ConfigError, GraphError
from repro.graph.generators import (
    erdos_renyi_digraph,
    random_deletions,
    random_insertions,
)
from repro.graph.transition import verify_transition_matrix
from repro.graph.updates import EdgeUpdate, UpdateBatch
from repro.simrank.exact import exact_simrank, truncation_error_bound
from repro.simrank.matrix import matrix_simrank


class TestConstruction:
    def test_initial_scores_computed_by_batch(self, cyclic_graph, config):
        engine = DynamicSimRank(cyclic_graph, config)
        expected = matrix_simrank(cyclic_graph, config)
        np.testing.assert_allclose(engine.similarities(), expected)

    def test_initial_scores_injectable(self, cyclic_graph, config):
        scores = exact_simrank(cyclic_graph, config)
        engine = DynamicSimRank(cyclic_graph, config, initial_scores=scores)
        np.testing.assert_allclose(engine.similarities(), scores)

    def test_initial_scores_shape_checked(self, cyclic_graph, config):
        with pytest.raises(GraphError):
            DynamicSimRank(cyclic_graph, config, initial_scores=np.eye(3))

    def test_unknown_algorithm_rejected(self, cyclic_graph):
        with pytest.raises(ConfigError):
            DynamicSimRank(cyclic_graph, algorithm="magic")

    def test_caller_graph_never_mutated(self, cyclic_graph, config):
        engine = DynamicSimRank(cyclic_graph, config)
        engine.apply(EdgeUpdate.insert(4, 2))
        assert not cyclic_graph.has_edge(4, 2)
        assert engine.graph.has_edge(4, 2)


class TestAlgorithmsAgree:
    @pytest.mark.parametrize("algorithm", ["inc-sr", "inc-usr"])
    def test_incremental_matches_batch_engine(self, random_graph, algorithm):
        config = SimRankConfig(damping=0.6, iterations=25)
        batch = UpdateBatch(
            list(random_deletions(random_graph, 3, seed=1))
            + list(random_insertions(random_graph, 4, seed=2))
        )
        incremental = DynamicSimRank(random_graph, config, algorithm=algorithm)
        incremental.apply(batch)
        truth = matrix_simrank(batch.applied(random_graph), config)
        np.testing.assert_allclose(
            incremental.similarities(),
            truth,
            atol=4 * truncation_error_bound(config),
        )

    def test_batch_algorithm_recomputes(self, cyclic_graph, config):
        engine = DynamicSimRank(cyclic_graph, config, algorithm="batch")
        engine.apply(EdgeUpdate.insert(4, 2))
        new_graph = cyclic_graph.copy()
        new_graph.add_edge(4, 2)
        np.testing.assert_allclose(
            engine.similarities(), matrix_simrank(new_graph, config)
        )

    def test_inc_sr_equals_inc_usr_through_engine(self, random_graph, config):
        batch = random_insertions(random_graph, 5, seed=3)
        engine_a = DynamicSimRank(random_graph, config, algorithm="inc-sr")
        engine_b = DynamicSimRank(random_graph, config, algorithm="inc-usr")
        engine_a.apply(batch)
        engine_b.apply(batch)
        np.testing.assert_allclose(
            engine_a.similarities(), engine_b.similarities(), atol=1e-10
        )


class TestStateConsistency:
    def test_q_matrix_tracks_graph(self, random_graph, config):
        engine = DynamicSimRank(random_graph, config, algorithm="inc-sr")
        batch = UpdateBatch(
            list(random_deletions(random_graph, 4, seed=4))
            + list(random_insertions(random_graph, 4, seed=5))
        )
        engine.apply(batch)
        assert verify_transition_matrix(engine.transition_matrix, engine.graph) is None

    def test_paranoid_mode_passes_on_correct_updates(self, cyclic_graph, config):
        engine = DynamicSimRank(cyclic_graph, config, paranoid=True)
        engine.apply(EdgeUpdate.insert(4, 2))
        engine.apply(EdgeUpdate.delete(4, 2))

    def test_invalid_update_raises_and_reports(self, cyclic_graph, config):
        engine = DynamicSimRank(cyclic_graph, config)
        with pytest.raises(GraphError):
            engine.apply(EdgeUpdate.insert(0, 1))  # already exists


class TestHistoryAndStats:
    def test_history_records_every_update(self, cyclic_graph, config):
        engine = DynamicSimRank(cyclic_graph, config)
        updates = [EdgeUpdate.insert(4, 2), EdgeUpdate.delete(4, 2)]
        stats = engine.apply(UpdateBatch(updates))
        assert len(stats) == 2
        assert [s.update for s in engine.history] == updates
        assert all(s.seconds >= 0 for s in stats)
        assert all(s.algorithm == "inc-sr" for s in stats)

    def test_total_update_seconds(self, cyclic_graph, config):
        engine = DynamicSimRank(cyclic_graph, config)
        engine.apply(EdgeUpdate.insert(4, 2))
        assert engine.total_update_seconds() == pytest.approx(
            sum(s.seconds for s in engine.history)
        )

    def test_affected_stats_only_for_inc_sr(self, cyclic_graph, config):
        pruned = DynamicSimRank(cyclic_graph, config, algorithm="inc-sr")
        pruned.apply(EdgeUpdate.insert(4, 2))
        assert pruned.aggregate_affected() is not None
        unpruned = DynamicSimRank(cyclic_graph, config, algorithm="inc-usr")
        unpruned.apply(EdgeUpdate.insert(4, 2))
        assert unpruned.aggregate_affected() is None

    def test_similarity_accessors(self, cyclic_graph, config):
        engine = DynamicSimRank(cyclic_graph, config)
        scores = engine.similarities()
        assert engine.similarity(1, 2) == pytest.approx(scores[1, 2])
        top = engine.top_k(3)
        assert len(top) == 3
        assert top[0][2] >= top[1][2] >= top[2][2]

    def test_similarities_returns_copy(self, cyclic_graph, config):
        engine = DynamicSimRank(cyclic_graph, config)
        scores = engine.similarities()
        scores[0, 0] = 99.0
        assert engine.similarity(0, 0) != 99.0

    def test_intermediate_bytes_positive(self, cyclic_graph, config):
        engine = DynamicSimRank(cyclic_graph, config)
        assert engine.intermediate_bytes() > 0


class TestLongStream:
    def test_fifty_mixed_updates_stay_consistent(self):
        graph = erdos_renyi_digraph(30, 0.08, seed=9)
        config = SimRankConfig(damping=0.6, iterations=25)
        engine = DynamicSimRank(graph, config, algorithm="inc-sr")
        live = graph.copy()
        rng = np.random.default_rng(17)
        applied = 0
        while applied < 50:
            edges = sorted(live.edge_set())
            if edges and rng.random() < 0.4:
                source, target = edges[int(rng.integers(len(edges)))]
                update = EdgeUpdate.delete(source, target)
            else:
                source = int(rng.integers(30))
                target = int(rng.integers(30))
                if source == target or live.has_edge(source, target):
                    continue
                update = EdgeUpdate.insert(source, target)
            engine.apply(update)
            update.apply_to(live)
            applied += 1
        truth = matrix_simrank(live, config)
        np.testing.assert_allclose(
            engine.similarities(),
            truth,
            atol=10 * truncation_error_bound(config),
        )
        assert engine.graph == live
