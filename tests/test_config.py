"""Tests for repro.config."""

import pytest

from repro.config import (
    DEFAULT_DAMPING,
    DEFAULT_ITERATIONS,
    SimRankConfig,
    iterations_for_accuracy,
)
from repro.exceptions import ConfigError


class TestSimRankConfig:
    def test_defaults_match_paper_evaluation_settings(self):
        config = SimRankConfig()
        assert config.damping == DEFAULT_DAMPING == 0.6
        assert config.iterations == DEFAULT_ITERATIONS == 15

    def test_accuracy_bound_is_damping_power_iterations(self):
        config = SimRankConfig(damping=0.6, iterations=15)
        assert config.accuracy_bound == pytest.approx(0.6**15)

    def test_paper_accuracy_claim(self):
        # "K = 15, with which a high accuracy C^K ~ 0.0005 is attainable".
        assert SimRankConfig(0.6, 15).accuracy_bound < 5e-4

    @pytest.mark.parametrize("damping", [0.0, 1.0, -0.5, 1.5])
    def test_rejects_damping_outside_open_unit_interval(self, damping):
        with pytest.raises(ConfigError):
            SimRankConfig(damping=damping)

    @pytest.mark.parametrize("iterations", [0, -1])
    def test_rejects_non_positive_iterations(self, iterations):
        with pytest.raises(ConfigError):
            SimRankConfig(iterations=iterations)

    def test_with_iterations_returns_modified_copy(self):
        config = SimRankConfig(0.8, 10)
        other = config.with_iterations(20)
        assert other.iterations == 20
        assert other.damping == 0.8
        assert config.iterations == 10  # original untouched

    def test_with_damping_returns_modified_copy(self):
        config = SimRankConfig(0.8, 10)
        other = config.with_damping(0.6)
        assert other.damping == 0.6
        assert other.iterations == 10

    def test_is_frozen(self):
        config = SimRankConfig()
        with pytest.raises(AttributeError):
            config.damping = 0.9

    def test_equality_and_hash(self):
        assert SimRankConfig(0.6, 15) == SimRankConfig(0.6, 15)
        assert hash(SimRankConfig(0.6, 15)) == hash(SimRankConfig(0.6, 15))


class TestIterationsForAccuracy:
    def test_matches_paper_choice(self):
        assert iterations_for_accuracy(0.6, 0.0005) == 15

    def test_bound_actually_met(self):
        for damping in (0.3, 0.6, 0.8, 0.95):
            for epsilon in (0.1, 0.01, 0.001):
                k = iterations_for_accuracy(damping, epsilon)
                assert damping**k <= epsilon + 1e-12
                assert damping ** (k - 1) > epsilon or k == 1

    def test_rejects_bad_damping(self):
        with pytest.raises(ConfigError):
            iterations_for_accuracy(1.0, 0.1)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ConfigError):
            iterations_for_accuracy(0.6, 0.0)
        with pytest.raises(ConfigError):
            iterations_for_accuracy(0.6, 1.5)
