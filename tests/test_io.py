"""Tests for repro.graph.io."""

import pytest

from repro.exceptions import GraphError
from repro.graph.io import (
    load_edge_list,
    load_timed_edge_list,
    save_edge_list,
    save_timed_edge_list,
)
from repro.graph.snapshots import TimestampedGraph


class TestPlainEdgeList:
    def test_roundtrip(self, tmp_path, citation_graph):
        path = str(tmp_path / "graph.txt")
        save_edge_list(citation_graph, path)
        loaded = load_edge_list(path)
        assert loaded == citation_graph

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# header\n\n0 1  # trailing comment\n1 2\n")
        graph = load_edge_list(str(path))
        assert graph.num_edges == 2
        assert graph.has_edge(0, 1)

    def test_explicit_num_nodes(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1\n")
        graph = load_edge_list(str(path), num_nodes=10)
        assert graph.num_nodes == 10

    def test_too_small_num_nodes_rejected(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 5\n")
        with pytest.raises(GraphError):
            load_edge_list(str(path), num_nodes=3)

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1 2\n")
        with pytest.raises(GraphError):
            load_edge_list(str(path))

    def test_non_integer_rejected(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphError):
            load_edge_list(str(path))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("")
        graph = load_edge_list(str(path))
        assert graph.num_nodes == 0


class TestTimedEdgeList:
    def test_roundtrip(self, tmp_path):
        graph = TimestampedGraph(4)
        graph.add_edge(0, 1, timestamp=0)
        graph.add_edge(1, 2, timestamp=3)
        graph.add_edge(2, 3, timestamp=5)
        path = str(tmp_path / "timed.txt")
        save_timed_edge_list(graph, path)
        loaded = load_timed_edge_list(path)
        assert loaded.num_edges == 3
        assert loaded.timestamps() == [0, 3, 5]
        assert loaded.snapshot_at(3).num_edges == 2

    def test_wrong_field_count_rejected(self, tmp_path):
        path = tmp_path / "timed.txt"
        path.write_text("0 1\n")
        with pytest.raises(GraphError):
            load_timed_edge_list(str(path))
