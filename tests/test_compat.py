"""Tests for repro.compat (networkx-facing wrappers)."""

import networkx as nx
import numpy as np
import pytest

from repro import SimRankConfig
from repro.compat import NetworkxDynamicSimRank, simrank_similarity
from repro.exceptions import NodeNotFoundError
from repro.graph.digraph import DynamicDiGraph
from repro.simrank.matrix import matrix_simrank


@pytest.fixture
def labeled_graph():
    graph = nx.DiGraph()
    graph.add_edges_from(
        [("alice", "bob"), ("alice", "carol"), ("bob", "dave"), ("carol", "dave")]
    )
    return graph


class TestSimrankSimilarity:
    def test_matches_internal_matrix(self, labeled_graph):
        config = SimRankConfig(damping=0.8, iterations=20)
        scores = simrank_similarity(labeled_graph, config)
        internal, labels = DynamicDiGraph.from_networkx(labeled_graph)
        matrix = matrix_simrank(internal, config)
        for a, index_a in labels.items():
            for b, index_b in labels.items():
                assert scores[a][b] == pytest.approx(matrix[index_a, index_b])

    def test_symmetric(self, labeled_graph):
        scores = simrank_similarity(labeled_graph)
        assert scores["bob"]["carol"] == pytest.approx(scores["carol"]["bob"])


class TestNetworkxDynamicSimRank:
    def test_incremental_update_matches_recompute(self, labeled_graph):
        config = SimRankConfig(damping=0.6, iterations=25)
        session = NetworkxDynamicSimRank(labeled_graph, config)
        session.add_edge("dave", "alice")
        labeled_graph.add_edge("dave", "alice")
        recomputed = simrank_similarity(labeled_graph, config)
        assert session.similarity("bob", "carol") == pytest.approx(
            recomputed["bob"]["carol"], abs=1e-4
        )

    def test_remove_edge(self, labeled_graph):
        config = SimRankConfig(damping=0.6, iterations=25)
        session = NetworkxDynamicSimRank(labeled_graph, config)
        session.remove_edge("alice", "bob")
        labeled_graph.remove_edge("alice", "bob")
        recomputed = simrank_similarity(labeled_graph, config)
        assert session.similarity("bob", "carol") == pytest.approx(
            recomputed["bob"]["carol"], abs=1e-4
        )

    def test_top_k_uses_labels(self, labeled_graph):
        session = NetworkxDynamicSimRank(labeled_graph)
        top = session.top_k(2)
        assert len(top) == 2
        names = {"alice", "bob", "carol", "dave"}
        for a, b, score in top:
            assert a in names and b in names
            assert 0.0 <= score <= 1.0

    def test_unknown_label_rejected(self, labeled_graph):
        session = NetworkxDynamicSimRank(labeled_graph)
        with pytest.raises(NodeNotFoundError):
            session.similarity("alice", "nobody")

    def test_engine_escape_hatch(self, labeled_graph):
        session = NetworkxDynamicSimRank(labeled_graph)
        assert session.engine.graph.num_nodes == 4


class TestEngineNodeArrival:
    def test_add_node_then_edges(self, cyclic_graph):
        from repro import DynamicSimRank
        from repro.graph.updates import EdgeUpdate

        config = SimRankConfig(damping=0.6, iterations=25)
        engine = DynamicSimRank(cyclic_graph, config, algorithm="inc-sr")
        new_node = engine.add_node()
        assert new_node == cyclic_graph.num_nodes
        # Isolated node: self-score is 1 - C, everything else 0.
        assert engine.similarity(new_node, new_node) == pytest.approx(0.4)
        assert engine.similarity(new_node, 0) == 0.0

        engine.apply(EdgeUpdate.insert(0, new_node))
        engine.apply(EdgeUpdate.insert(new_node, 2))
        live = cyclic_graph.copy()
        live.add_node()
        live.add_edge(0, new_node)
        live.add_edge(new_node, 2)
        truth = matrix_simrank(live, config)
        np.testing.assert_allclose(
            engine.similarities(), truth, atol=1e-4
        )

    def test_add_node_under_paranoid_mode(self, diamond_graph, config):
        from repro import DynamicSimRank
        from repro.graph.updates import EdgeUpdate

        engine = DynamicSimRank(diamond_graph, config, paranoid=True)
        node = engine.add_node()
        engine.apply(EdgeUpdate.insert(node, 0))
