"""Tests for repro.linalg.svd_tools."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import DimensionError
from repro.linalg.svd_tools import (
    lossless_rank,
    lossless_rank_fraction,
    numerical_rank,
    reconstruction_error,
    truncated_svd,
)


class TestTruncatedSVD:
    def test_lossless_reconstruction(self):
        rng = np.random.default_rng(0)
        matrix = rng.random((8, 8))
        factors = truncated_svd(matrix, rank=8)
        np.testing.assert_allclose(factors.reconstruct(), matrix, atol=1e-10)

    def test_singular_values_sorted(self):
        rng = np.random.default_rng(1)
        factors = truncated_svd(rng.random((10, 10)), rank=10)
        assert np.all(np.diff(factors.sigma) <= 1e-12)

    def test_column_orthonormality(self):
        # The property the paper's Example 2 relies on: UᵀU = I even when
        # U·Uᵀ != I.
        matrix = np.array([[0.0, 1.0], [0.0, 0.0]])
        factors = truncated_svd(matrix, rank=1)
        np.testing.assert_allclose(factors.u.T @ factors.u, np.eye(1), atol=1e-12)
        np.testing.assert_allclose(factors.v.T @ factors.v, np.eye(1), atol=1e-12)
        assert not np.allclose(factors.u @ factors.u.T, np.eye(2))

    def test_truncation_gives_best_low_rank(self):
        rng = np.random.default_rng(2)
        matrix = rng.random((12, 12))
        factors = truncated_svd(matrix, rank=3)
        sigma_full = np.linalg.svd(matrix, compute_uv=False)
        # Eckart-Young: spectral error equals sigma_{r+1}.
        assert reconstruction_error(matrix, factors) == pytest.approx(
            sigma_full[3], rel=1e-10
        )

    def test_accepts_sparse(self):
        matrix = sp.random(9, 9, density=0.3, random_state=3)
        factors = truncated_svd(matrix, rank=4)
        assert factors.rank == 4

    def test_rank_clamped_to_matrix_size(self):
        factors = truncated_svd(np.eye(3), rank=10)
        assert factors.rank == 3

    def test_rejects_bad_rank(self):
        with pytest.raises(DimensionError):
            truncated_svd(np.eye(3), rank=0)

    def test_factors_truncated_method(self):
        rng = np.random.default_rng(4)
        factors = truncated_svd(rng.random((6, 6)), rank=6)
        smaller = factors.truncated(2)
        assert smaller.rank == 2
        np.testing.assert_array_equal(smaller.sigma, factors.sigma[:2])


class TestRanks:
    def test_numerical_rank_of_rank_deficient(self):
        matrix = np.outer([1.0, 2.0, 3.0], [4.0, 5.0, 6.0])
        assert numerical_rank(matrix) == 1

    def test_numerical_rank_of_identity(self):
        assert numerical_rank(np.eye(5)) == 5

    def test_zero_matrix(self):
        assert numerical_rank(np.zeros((4, 4))) == 0
        assert lossless_rank_fraction(np.zeros((4, 4))) == 0.0

    def test_lossless_rank_alias(self):
        rng = np.random.default_rng(5)
        matrix = rng.random((6, 3)) @ rng.random((3, 6))
        assert lossless_rank(matrix) == numerical_rank(matrix) == 3

    def test_fraction(self):
        matrix = np.diag([1.0, 1.0, 0.0, 0.0])
        assert lossless_rank_fraction(matrix) == pytest.approx(0.5)

    def test_transition_matrices_usually_rank_deficient(self, citation_graph):
        # The paper's core observation: real-ish graphs have rank(Q) < n,
        # so Li et al.'s Eq. (6) assumption fails.
        from repro.graph.transition import backward_transition_matrix

        q = backward_transition_matrix(citation_graph)
        assert lossless_rank(q) < citation_graph.num_nodes
