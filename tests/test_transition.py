"""Tests for repro.graph.transition."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.graph.digraph import DynamicDiGraph
from repro.graph.transition import (
    adjacency_matrix,
    backward_transition_matrix,
    transition_row,
    update_transition_matrix,
    verify_transition_matrix,
)
from repro.graph.updates import EdgeUpdate


class TestAdjacencyMatrix:
    def test_diamond(self, diamond_graph):
        a = adjacency_matrix(diamond_graph).toarray()
        expected = np.zeros((4, 4))
        expected[0, 1] = expected[0, 2] = expected[1, 3] = expected[2, 3] = 1
        np.testing.assert_array_equal(a, expected)

    def test_path_counting_via_powers(self, diamond_graph):
        # Lemma 1: [A^2]_{0,3} counts length-2 paths 0->*->3 (there are 2).
        a = adjacency_matrix(diamond_graph)
        a2 = (a @ a).toarray()
        assert a2[0, 3] == 2


class TestBackwardTransitionMatrix:
    def test_rows_normalized_over_in_neighbors(self, diamond_graph):
        q = backward_transition_matrix(diamond_graph).toarray()
        # Row 3 averages over in-neighbors {1, 2}.
        assert q[3, 1] == pytest.approx(0.5)
        assert q[3, 2] == pytest.approx(0.5)
        # Row 1 has single in-neighbor 0.
        assert q[1, 0] == pytest.approx(1.0)
        # Row 0 (no in-links) is all zero.
        assert np.all(q[0] == 0.0)

    def test_row_sums_are_zero_or_one(self, random_graph):
        q = backward_transition_matrix(random_graph)
        sums = np.asarray(q.sum(axis=1)).ravel()
        for node in range(random_graph.num_nodes):
            expected = 1.0 if random_graph.in_degree(node) > 0 else 0.0
            assert sums[node] == pytest.approx(expected)

    def test_matches_row_normalized_adjacency_transpose(self, citation_graph):
        a = adjacency_matrix(citation_graph).toarray()
        q = backward_transition_matrix(citation_graph).toarray()
        at = a.T
        degrees = at.sum(axis=1, keepdims=True)
        with np.errstate(invalid="ignore"):
            expected = np.where(degrees > 0, at / degrees, 0.0)
        np.testing.assert_allclose(q, expected)


class TestTransitionRow:
    def test_single_row_matches_full_matrix(self, citation_graph):
        q = backward_transition_matrix(citation_graph).toarray()
        for node in (0, 7, 33, citation_graph.num_nodes - 1):
            row = transition_row(citation_graph, node).toarray().ravel()
            np.testing.assert_allclose(row, q[node])

    def test_isolated_node_row_empty(self):
        graph = DynamicDiGraph(3)
        row = transition_row(graph, 1)
        assert row.nnz == 0


class TestUpdateTransitionMatrix:
    @pytest.mark.parametrize(
        "update",
        [
            EdgeUpdate.insert(0, 3),  # target with in-degree 2
            EdgeUpdate.insert(3, 0),  # target with in-degree 0
            EdgeUpdate.delete(1, 3),  # target drops to in-degree 1
            EdgeUpdate.delete(0, 1),  # target drops to in-degree 0
        ],
    )
    def test_single_row_rewrite_matches_rebuild(self, diamond_graph, update):
        old_q = backward_transition_matrix(diamond_graph)
        new_graph = diamond_graph.copy()
        update.apply_to(new_graph)
        spliced = update_transition_matrix(old_q, update, new_graph)
        rebuilt = backward_transition_matrix(new_graph)
        np.testing.assert_allclose(spliced.toarray(), rebuilt.toarray())

    def test_many_sequential_updates_stay_consistent(self, random_graph):
        from repro.graph.generators import random_insertions, random_deletions

        q = backward_transition_matrix(random_graph)
        graph = random_graph.copy()
        updates = list(random_deletions(graph, 5, seed=1)) + list(
            random_insertions(graph, 5, seed=2)
        )
        for update in updates:
            update.apply_to(graph)
            q = update_transition_matrix(q, update, graph)
        assert verify_transition_matrix(q, graph) is None

    def test_shape_mismatch_rejected(self, diamond_graph):
        import scipy.sparse as sp

        bad_q = sp.csr_matrix((3, 3))
        new_graph = diamond_graph.copy()
        new_graph.add_edge(0, 3)
        with pytest.raises(DimensionError):
            update_transition_matrix(bad_q, EdgeUpdate.insert(0, 3), new_graph)


class TestVerifyTransitionMatrix:
    def test_reports_discrepancy(self, diamond_graph):
        q = backward_transition_matrix(diamond_graph).tolil()
        q[3, 1] = 0.9
        message = verify_transition_matrix(q.tocsr(), diamond_graph)
        assert message is not None
        assert "(3, 1)" in message

    def test_accepts_consistent_matrix(self, diamond_graph):
        q = backward_transition_matrix(diamond_graph)
        assert verify_transition_matrix(q, diamond_graph) is None
