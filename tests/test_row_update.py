"""Tests for repro.incremental.row_update (consolidated rank-one rows)."""

import numpy as np
import pytest

from repro import SimRankConfig
from repro.exceptions import GraphError
from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import (
    erdos_renyi_digraph,
    random_deletions,
    random_insertions,
)
from repro.graph.transition import (
    backward_transition_matrix,
    verify_transition_matrix,
)
from repro.graph.updates import EdgeUpdate, UpdateBatch
from repro.simrank.matrix import matrix_simrank
from repro.incremental.row_update import (
    RowUpdate,
    apply_consolidated_batch,
    apply_row_update,
    consolidate_batch,
    row_rank_one_vectors,
)
from repro.simrank.exact import exact_simrank, truncation_error_bound


class TestConsolidateBatch:
    def test_groups_by_target(self, diamond_graph):
        batch = UpdateBatch(
            [
                EdgeUpdate.insert(0, 3),
                EdgeUpdate.insert(3, 0),
                EdgeUpdate.delete(1, 3),
            ]
        )
        rows = consolidate_batch(batch, diamond_graph)
        assert [r.target for r in rows] == [0, 3]
        by_target = {r.target: r for r in rows}
        assert by_target[3].added == (0,)
        assert by_target[3].removed == (1,)
        assert by_target[0].added == (3,)

    def test_insert_then_delete_cancels(self, diamond_graph):
        batch = UpdateBatch(
            [EdgeUpdate.insert(3, 0), EdgeUpdate.delete(3, 0)]
        )
        assert consolidate_batch(batch, diamond_graph) == []

    def test_delete_then_reinsert_cancels(self, diamond_graph):
        batch = UpdateBatch(
            [EdgeUpdate.delete(0, 1), EdgeUpdate.insert(0, 1)]
        )
        assert consolidate_batch(batch, diamond_graph) == []

    def test_invalid_batch_rejected(self, diamond_graph):
        batch = UpdateBatch([EdgeUpdate.insert(0, 1)])  # already exists
        with pytest.raises(GraphError):
            consolidate_batch(batch, diamond_graph)

    def test_row_update_unit_equivalence(self, diamond_graph):
        row = RowUpdate(target=3, added=(0,), removed=(1,))
        assert row.num_changes == 2
        scratch = diamond_graph.copy()
        row.apply_to(scratch)
        assert scratch.has_edge(0, 3)
        assert not scratch.has_edge(1, 3)


class TestRowRankOneVectors:
    def test_composite_factorization(self, diamond_graph):
        """u·vᵀ equals the materialized composite ΔQ."""
        row = RowUpdate(target=3, added=(0,), removed=(1,))
        u, v = row_rank_one_vectors(diamond_graph, row)
        old_q = backward_transition_matrix(diamond_graph).toarray()
        new_graph = diamond_graph.copy()
        row.apply_to(new_graph)
        new_q = backward_transition_matrix(new_graph).toarray()
        np.testing.assert_allclose(np.outer(u, v), new_q - old_q, atol=1e-12)

    def test_matches_theorem1_for_single_edge(self, diamond_graph):
        """A one-edge row update factors like Theorem 1 (up to scaling)."""
        from repro.incremental.rank_one import rank_one_decomposition

        row = RowUpdate(target=3, added=(0,), removed=())
        u_row, v_row = row_rank_one_vectors(diamond_graph, row)
        u_thm, v_thm = rank_one_decomposition(
            diamond_graph, EdgeUpdate.insert(0, 3)
        )
        np.testing.assert_allclose(
            np.outer(u_row, v_row), np.outer(u_thm, v_thm), atol=1e-12
        )

    def test_validation(self, diamond_graph):
        with pytest.raises(GraphError):
            row_rank_one_vectors(
                diamond_graph, RowUpdate(target=3, added=(1,), removed=())
            )
        with pytest.raises(GraphError):
            row_rank_one_vectors(
                diamond_graph, RowUpdate(target=3, added=(), removed=(0,))
            )

    def test_emptying_a_row(self, diamond_graph):
        """Removing every in-edge zeroes the row."""
        row = RowUpdate(target=3, added=(), removed=(1, 2))
        u, v = row_rank_one_vectors(diamond_graph, row)
        old_q = backward_transition_matrix(diamond_graph).toarray()
        new_graph = diamond_graph.copy()
        row.apply_to(new_graph)
        new_q = backward_transition_matrix(new_graph).toarray()
        np.testing.assert_allclose(np.outer(u, v), new_q - old_q, atol=1e-12)


class TestApplyRowUpdate:
    def test_matches_exact_fixed_point(self, cyclic_graph):
        config = SimRankConfig(damping=0.6, iterations=30)
        q = backward_transition_matrix(cyclic_graph)
        s_old = exact_simrank(cyclic_graph, config)
        row = RowUpdate(target=2, added=(4, 3), removed=(1,))
        result = apply_row_update(cyclic_graph, q, s_old, row, config)
        new_graph = cyclic_graph.copy()
        row.apply_to(new_graph)
        truth = exact_simrank(new_graph, config)
        np.testing.assert_allclose(
            result.new_s, truth, atol=2 * truncation_error_bound(config)
        )

    def test_single_edge_row_matches_unit_path(self, cyclic_graph):
        from repro.incremental.inc_sr import inc_sr_update

        config = SimRankConfig(damping=0.6, iterations=15)
        q = backward_transition_matrix(cyclic_graph)
        s_old = exact_simrank(cyclic_graph, config)
        row = RowUpdate(target=2, added=(4,), removed=())
        composite = apply_row_update(cyclic_graph, q, s_old, row, config)
        unit = inc_sr_update(
            cyclic_graph, q, s_old, EdgeUpdate.insert(4, 2), config
        )
        np.testing.assert_allclose(composite.new_s, unit.new_s, atol=1e-11)


class TestApplyConsolidatedBatch:
    def test_caller_store_not_mutated_by_default(self, random_graph, config):
        from repro.linalg.qstore import TransitionStore

        store = TransitionStore.from_graph(random_graph)
        before = store.toarray().copy()
        scores = matrix_simrank(store.csr_matrix(), config)
        target = 3
        source = next(
            n
            for n in range(random_graph.num_nodes)
            if n != target and not random_graph.has_edge(n, target)
        )
        batch = UpdateBatch([EdgeUpdate.insert(source, target)])
        apply_consolidated_batch(
            random_graph, None, scores, batch, config, store=store
        )
        np.testing.assert_array_equal(store.toarray(), before)

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_exact_after_whole_batch(self, seed):
        graph = erdos_renyi_digraph(20, 0.12, seed=seed)
        config = SimRankConfig(damping=0.6, iterations=30)
        batch = UpdateBatch(
            list(random_deletions(graph, 3, seed=seed))
            + list(random_insertions(graph, 5, seed=seed + 10))
        )
        q = backward_transition_matrix(graph)
        s_old = exact_simrank(graph, config)
        scores, new_q, new_graph, groups = apply_consolidated_batch(
            graph, q, s_old, batch, config
        )
        assert groups <= len(batch)
        assert new_graph == batch.applied(graph)
        assert verify_transition_matrix(new_q, new_graph) is None
        truth = exact_simrank(new_graph, config)
        np.testing.assert_allclose(
            scores, truth, atol=4 * truncation_error_bound(config)
        )

    def test_fewer_runs_with_repeated_targets(self):
        """Five insertions into one node = one rank-one run."""
        graph = DynamicDiGraph.from_edges(8, [(0, 7)])
        config = SimRankConfig(damping=0.6, iterations=20)
        batch = UpdateBatch(
            [EdgeUpdate.insert(s, 7) for s in range(1, 6)]
        )
        q = backward_transition_matrix(graph)
        s_old = exact_simrank(graph, config)
        scores, _, new_graph, groups = apply_consolidated_batch(
            graph, q, s_old, batch, config
        )
        assert groups == 1
        truth = exact_simrank(new_graph, config)
        np.testing.assert_allclose(
            scores, truth, atol=2 * truncation_error_bound(config)
        )

    def test_inputs_not_mutated(self, cyclic_graph, config):
        q = backward_transition_matrix(cyclic_graph)
        s_old = exact_simrank(cyclic_graph, config)
        snapshot = s_old.copy()
        batch = UpdateBatch([EdgeUpdate.insert(4, 2)])
        apply_consolidated_batch(cyclic_graph, q, s_old, batch, config)
        np.testing.assert_array_equal(s_old, snapshot)
        assert not cyclic_graph.has_edge(4, 2)
