#!/usr/bin/env python
"""Bulk citation import: consolidated row updates vs unit updates.

When a new survey paper appears it cites dozens of existing papers at
once — dozens of unit updates that all rewrite the *same* row of the
transition matrix.  The generalized rank-one row update
(`repro.incremental.row_update`, an extension of the paper's Theorem 1)
processes each such group as a single Sylvester-series run.

This example imports three "survey papers" worth of citations into a
citation graph both ways and compares cost and results.

Run:  python examples/bulk_citation_import.py
"""

import time

import numpy as np

from repro import DynamicSimRank, SimRankConfig
from repro.datasets.citation import dblp_like
from repro.graph.updates import EdgeUpdate, UpdateBatch
from repro.incremental.row_update import consolidate_batch


def main() -> None:
    corpus = dblp_like(num_papers=350, num_years=8)
    graph = corpus.snapshot_at(corpus.timestamps()[-1])
    config = SimRankConfig(damping=0.6, iterations=15)
    rng = np.random.default_rng(29)

    # Three "survey papers" (recent nodes) each gain 12 new references
    # FROM existing papers that now cite them -- 36 updates, 3 rows.
    surveys = [340, 341, 342]
    updates = []
    for survey in surveys:
        existing = set(graph.in_neighbors(survey))
        while sum(1 for u in updates if u.target == survey) < 12:
            citer = int(rng.integers(graph.num_nodes))
            if citer == survey or citer in existing:
                continue
            existing.add(citer)
            updates.append(EdgeUpdate.insert(citer, survey))
    batch = UpdateBatch(updates)
    groups = consolidate_batch(batch, graph)
    print(
        f"importing {len(batch)} citations touching "
        f"{len(groups)} target rows"
    )

    initial_engine = DynamicSimRank(graph, config, algorithm="inc-sr")
    initial_scores = initial_engine.similarities()

    unit_engine = DynamicSimRank(
        graph, config, algorithm="inc-sr", initial_scores=initial_scores
    )
    started = time.perf_counter()
    unit_engine.apply(batch)
    unit_seconds = time.perf_counter() - started

    cons_engine = DynamicSimRank(
        graph, config, algorithm="inc-sr", initial_scores=initial_scores
    )
    started = time.perf_counter()
    num_groups = cons_engine.apply_consolidated(batch)
    cons_seconds = time.perf_counter() - started

    gap = float(
        np.max(np.abs(unit_engine.similarities() - cons_engine.similarities()))
    )
    print(
        f"unit path:         {unit_seconds * 1e3:7.1f} ms "
        f"({len(batch)} Sylvester runs)"
    )
    print(
        f"consolidated path: {cons_seconds * 1e3:7.1f} ms "
        f"({num_groups} Sylvester runs)"
    )
    print(f"speedup: {unit_seconds / cons_seconds:.1f}x, max score gap: {gap:.1e}")

    survey = surveys[0]
    scores = cons_engine.similarities()[survey].copy()
    scores[survey] = -np.inf
    related = np.argsort(-scores)[:5]
    print(f"papers now most similar to survey {survey}:")
    for paper in related:
        print(f"  paper {int(paper)}: {scores[paper]:.4f}")


if __name__ == "__main__":
    main()
