#!/usr/bin/env python
"""Citation-network evolution: year-by-year incremental maintenance.

Recreates the paper's real-data protocol on the DBLP-like simulator:
take the snapshot at year ``t`` as the base graph, then replay each
following year's new citations as an update batch, maintaining SimRank
incrementally.  After every year we report the update cost, the affected
area, and the current most-similar paper pairs (the "related work
finder" application the paper's introduction motivates).

Run:  python examples/citation_evolution.py
"""

import time

from repro import DynamicSimRank
from repro.datasets.citation import dblp_like
from repro.metrics.ndcg import ndcg_at_k
from repro.simrank.matrix import matrix_simrank


def main() -> None:
    corpus = dblp_like(num_papers=400, num_years=8)
    years = corpus.timestamps()
    base_year = years[len(years) // 2]
    base = corpus.snapshot_at(base_year)
    print(
        f"base snapshot (year {base_year}): {base.num_nodes} papers, "
        f"{base.num_edges} citations"
    )

    from repro.datasets.registry import get_dataset

    config = get_dataset("dblp").config
    started = time.perf_counter()
    engine = DynamicSimRank(base, config, algorithm="inc-sr")
    print(f"batch precompute: {time.perf_counter() - started:.2f} s")

    for year in years[len(years) // 2 + 1 :]:
        delta = corpus.delta_between(year - 1, year)
        if len(delta) == 0:
            continue
        stats = engine.apply(delta)
        seconds = sum(s.seconds for s in stats)
        affected = engine.aggregate_affected()
        print(
            f"year {year}: +{delta.num_insertions} citations in "
            f"{seconds * 1e3:.1f} ms "
            f"({100 * affected.pruned_fraction():.1f}% pairs pruned)"
        )

    # Validate the maintained index against a fresh batch run.
    final = corpus.snapshot_at(years[-1])
    oracle = matrix_simrank(final, config.with_iterations(35))
    quality = ndcg_at_k(engine.similarities(), oracle, k=30)
    print(f"NDCG@30 of maintained scores vs K=35 batch oracle: {quality:.4f}")

    print("most similar paper pairs at the final year:")
    for a, b, score in engine.top_k(5):
        print(f"  papers {a} and {b}: {score:.4f}")


if __name__ == "__main__":
    main()
