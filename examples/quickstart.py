#!/usr/bin/env python
"""Quickstart: keep SimRank scores fresh while a graph evolves.

Builds a small citation-style graph, precomputes SimRank once, then
applies a stream of link updates incrementally with Inc-SR and shows
that the maintained scores match a from-scratch batch recomputation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DynamicSimRank, SimRankConfig, matrix_simrank
from repro.graph.generators import preferential_attachment_digraph, random_insertions


def main() -> None:
    # 1. A 300-node citation-style graph and the paper's default settings.
    graph = preferential_attachment_digraph(300, out_degree=3, seed=7)
    config = SimRankConfig(damping=0.6, iterations=15)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # 2. Precompute SimRank once on the old graph (the batch step).
    engine = DynamicSimRank(graph, config, algorithm="inc-sr")
    pair = (5, 9)
    print(f"s{pair} before updates: {engine.similarity(*pair):.6f}")

    # 3. Stream link updates through the engine — no recomputation.
    updates = random_insertions(graph, 10, seed=21)
    stats = engine.apply(updates)
    total_ms = 1e3 * sum(s.seconds for s in stats)
    print(f"applied {len(stats)} unit updates in {total_ms:.1f} ms total")
    print(f"s{pair} after updates:  {engine.similarity(*pair):.6f}")

    # 4. Cross-check against a full batch recomputation.
    final_graph = updates.applied(graph)
    batch_scores = matrix_simrank(final_graph, config)
    gap = float(np.max(np.abs(engine.similarities() - batch_scores)))
    print(f"max |incremental - batch| over all pairs: {gap:.2e}")

    # 5. How much work did pruning skip?
    affected = engine.aggregate_affected()
    print(f"node-pairs pruned per update: {100 * affected.pruned_fraction():.1f}%")

    # 6. The most similar node pairs right now.
    print("top-5 similar pairs:")
    for a, b, score in engine.top_k(5):
        print(f"  ({a:3d}, {b:3d})  {score:.4f}")


if __name__ == "__main__":
    main()
