#!/usr/bin/env python
"""Why SVD-based incremental SimRank loses accuracy (paper Sec. IV).

Walks through the paper's Examples 2–3 numerically, then measures the
drift of Inc-SVD against the exact scores on a realistic graph, side by
side with Inc-SR which stays exact.  This is the "fly in the ointment"
analysis as runnable code.

Run:  python examples/accuracy_study.py
"""

import numpy as np

from repro import DynamicSimRank, EdgeUpdate, SimRankConfig
from repro.datasets.citation import dblp_like
from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import random_insertions
from repro.graph.transition import backward_transition_matrix
from repro.incremental.inc_svd import IncSVDSimRank
from repro.linalg.svd_tools import lossless_rank, truncated_svd
from repro.metrics.error import max_abs_error
from repro.simrank.matrix import matrix_simrank


def paper_example_2_and_3() -> None:
    """The 2-node counterexample: Eq. (6) fails when rank(Q) < n."""
    print("=== Paper Examples 2-3: the 2-node counterexample ===")
    # Q = [[0, 1], [0, 0]] has rank 1 < n = 2.
    graph = DynamicDiGraph.from_edges(2, [(1, 0)])  # edge 1 -> 0 gives Q[0,1]=1
    q_matrix = backward_transition_matrix(graph).toarray()
    print("Q =", q_matrix.tolist())
    factors = truncated_svd(q_matrix, rank=lossless_rank(q_matrix))
    uut = factors.u @ factors.u.T
    print("U·Uᵀ =", np.round(uut, 6).tolist(), "(≠ I because rank(Q) < n)")

    # Insert the edge that makes ΔQ = [[0,0],[1,0]] and track the drift.
    session = IncSVDSimRank(graph, rank=lossless_rank(q_matrix))
    session.apply(EdgeUpdate.insert(0, 1))  # edge 0 -> 1 gives Q[1,0]=1
    residual = session.reconstruction_residual()
    print(
        f"||Q̃ - Ũ·Σ̃·Ṽᵀ||₂ after the factor update = {residual:.3f} "
        "(the paper derives exactly 1)"
    )
    print()


def drift_on_citation_graph() -> None:
    """Inc-SVD vs Inc-SR error growth over a stream of updates."""
    print("=== Accuracy drift on a DBLP-like graph ===")
    corpus = dblp_like(num_papers=250, num_years=6)
    base = corpus.snapshot_at(corpus.timestamps()[-1])
    config = SimRankConfig(damping=0.6, iterations=15)
    rank = lossless_rank(backward_transition_matrix(base))
    print(
        f"graph: n={base.num_nodes}, rank(Q)={rank} "
        f"({100 * rank / base.num_nodes:.0f}% of n)"
    )

    engine = DynamicSimRank(base, config, algorithm="inc-sr")
    svd_session = IncSVDSimRank(base, rank=rank, config=config)

    updates = list(random_insertions(base, 20, seed=9))
    live_graph = base.copy()
    print(f"{'updates':>8}  {'Inc-SR err':>12}  {'Inc-SVD err':>12}")
    for count, update in enumerate(updates, start=1):
        engine.apply(update)
        svd_session.apply(update)
        update.apply_to(live_graph)
        if count % 5 == 0:
            truth = matrix_simrank(live_graph, config)
            sr_err = max_abs_error(engine.similarities(), truth)
            svd_err = max_abs_error(svd_session.scores(), truth)
            print(f"{count:>8}  {sr_err:>12.2e}  {svd_err:>12.2e}")
    print(
        "\nInc-SR stays at iteration-truncation level while Inc-SVD "
        "accumulates eigen-information loss (even at the lossless rank)."
    )


if __name__ == "__main__":
    paper_example_2_and_3()
    drift_on_citation_graph()
