#!/usr/bin/env python
"""Related-video recommendation over a churning YouTube-like graph.

The YOUTU workload differs from citation graphs in two ways the
algorithms must survive: the graph is *cyclic* (related lists are often
mutual) and links *churn* — old related-list entries get replaced, so
the update stream mixes deletions with insertions.  This example keeps a
SimRank-based "videos like this one" recommender fresh under that churn
and compares the incremental maintenance cost with full recomputation.

Run:  python examples/video_recommendation.py
"""

import time

import numpy as np

from repro import DynamicSimRank
from repro.datasets.registry import get_dataset
from repro.datasets.video import youtube_like
from repro.graph.generators import random_deletions, random_insertions
from repro.graph.updates import UpdateBatch
from repro.simrank.matrix import matrix_simrank


def recommend(engine: DynamicSimRank, video: int, k: int = 5):
    """Top-k most SimRank-similar videos to ``video`` (excluding itself)."""
    scores = engine.similarities()[video].copy()
    scores[video] = -np.inf
    best = np.argsort(-scores)[:k]
    return [(int(v), float(scores[v])) for v in best]


def main() -> None:
    corpus = youtube_like(num_videos=400, num_ages=5)
    ages = corpus.timestamps()
    base = corpus.snapshot_at(ages[-1])
    config = get_dataset("youtu").config  # K = 5, as the paper uses on YOUTU
    print(f"video graph: {base.num_nodes} videos, {base.num_edges} links")

    engine = DynamicSimRank(base, config, algorithm="inc-sr")
    query = 42
    print(f"recommendations for video {query} before churn:")
    for video, score in recommend(engine, query):
        print(f"  video {video}: {score:.4f}")

    # Churn: 15 related-list entries replaced (delete + insert pairs).
    churn = UpdateBatch(
        list(random_deletions(base, 15, seed=3))
        + list(random_insertions(base, 15, seed=4))
    )
    started = time.perf_counter()
    engine.apply(churn)
    incremental_seconds = time.perf_counter() - started

    started = time.perf_counter()
    batch_scores = matrix_simrank(churn.applied(base), config)
    batch_seconds = time.perf_counter() - started

    gap = float(np.max(np.abs(engine.similarities() - batch_scores)))
    print(
        f"churn of {len(churn)} updates: incremental "
        f"{incremental_seconds * 1e3:.1f} ms vs batch recompute "
        f"{batch_seconds * 1e3:.1f} ms (max score gap {gap:.1e})"
    )

    print(f"recommendations for video {query} after churn:")
    for video, score in recommend(engine, query):
        print(f"  video {video}: {score:.4f}")


if __name__ == "__main__":
    main()
